"""Bounded channels and buffer credits for the streaming runtime.

Two synchronisation primitives, both abortable so a failing stage can tear
the whole pipeline down without deadlocking:

* :class:`Channel` — a bounded multi-producer/multi-consumer queue linking
  two stages.  ``put`` blocks while the channel is full, which is what makes
  backpressure *real*: a slow adder stalls the gridder through the channel,
  exactly like a full device-buffer set stalls the HtoD stream in Fig 7.
* :class:`CreditGate` — the paper's ``n_buffers`` device-buffer sets.  The
  plan splitter acquires one credit per work group before emitting it and the
  terminal stage releases the credit when the group is fully retired, so at
  most ``n_buffers`` groups are in flight end to end (1 = serial schedule,
  3 = triple buffering).

Both integrate with :class:`repro.runtime.telemetry.Telemetry`: channels
record depth gauges, blocked-time totals and a time-averaged occupancy;
the gate records an in-flight gauge.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.runtime.telemetry import QueueStats, Telemetry, monotonic


class ChannelClosed(Exception):
    """Raised by :meth:`Channel.get` when the channel is drained and closed."""


class PipelineAborted(RuntimeError):
    """Raised by blocked channel/gate operations when the pipeline aborts."""


@dataclass(frozen=True)
class WaiterInfo:
    """One thread blocked on a channel/gate operation."""

    ident: int
    name: str
    since: float  # monotonic() at the start of the blocking call


@dataclass(frozen=True)
class ChannelWaiters:
    """Snapshot of a channel's blocked threads (see :meth:`Channel.waiters`).

    ``owner`` is the ident of the thread currently executing inside one of
    the channel's locked regions (holding ``_cond``'s lock), or ``None`` —
    threads parked *in* ``Condition.wait`` do not own the lock and appear in
    ``put``/``get`` instead.
    """

    put: tuple[WaiterInfo, ...]
    get: tuple[WaiterInfo, ...]
    owner: int | None


class Channel:
    """A bounded, closeable, abortable queue between two pipeline stages.

    Parameters
    ----------
    name:
        Label used in telemetry (conventionally ``"upstream->downstream"``).
    capacity:
        Maximum queued items; ``put`` blocks when reached (backpressure).
    n_producers:
        Number of upstream workers; the channel closes when each has called
        :meth:`producer_done` and all queued items have been consumed.
    telemetry:
        Optional recorder for depth gauges.
    """

    def __init__(
        self,
        name: str,
        capacity: int,
        n_producers: int = 1,
        telemetry: Telemetry | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if n_producers <= 0:
            raise ValueError("n_producers must be positive")
        self.name = name
        self.capacity = capacity
        self._telemetry = telemetry
        self._items: deque[Any] = deque()
        self._cond = threading.Condition()
        self._producers_left = n_producers
        self._aborted = False
        # lifetime statistics (guarded by self._cond)
        self._n_put = 0
        self._n_get = 0
        self._max_depth = 0
        self._blocked_put = 0.0
        self._blocked_get = 0.0
        self._depth_integral = 0.0
        self._born = monotonic()
        self._last_change = self._born
        # waiter bookkeeping for the deadlock watchdog (guarded by _cond;
        # read without it — best effort — by waiters())
        self._put_waiters: dict[int, WaiterInfo] = {}
        self._get_waiters: dict[int, WaiterInfo] = {}
        self._owner: int | None = None

    # ------------------------------------------------------------- internal

    def _advance_clock(self) -> None:  # idglint: requires-lock(_cond)
        """Accumulate the depth-time integral.

        Callers must hold ``self._cond`` (asserted by the ``requires-lock``
        annotation — idglint verifies every call site).
        """
        now = monotonic()
        self._depth_integral += len(self._items) * (now - self._last_change)
        self._last_change = now

    def _record_depth(self) -> None:
        if self._telemetry is not None:
            self._telemetry.record_gauge(f"queue:{self.name}", len(self._items))

    def _wait(self, waiters: dict[int, WaiterInfo], t0: float) -> None:  # idglint: requires-lock(_cond)
        """Park on ``_cond``, registered in ``waiters`` for the watchdog."""
        ident = threading.get_ident()
        waiters[ident] = WaiterInfo(ident, threading.current_thread().name, t0)
        self._owner = None
        try:
            self._cond.wait()
        finally:
            self._owner = ident
            waiters.pop(ident, None)

    # ------------------------------------------------------------ queue ops

    def put(self, item: Any) -> None:
        """Enqueue ``item``, blocking while the channel is full.

        Raises :class:`PipelineAborted` when the channel is (or becomes,
        while blocked) aborted.
        """
        t0 = monotonic()
        with self._cond:
            self._owner = threading.get_ident()
            try:
                while len(self._items) >= self.capacity and not self._aborted:
                    self._wait(self._put_waiters, t0)
                if self._aborted:
                    raise PipelineAborted(f"channel {self.name} aborted")
                self._advance_clock()
                self._blocked_put += monotonic() - t0
                self._items.append(item)
                self._n_put += 1
                self._max_depth = max(self._max_depth, len(self._items))
                self._cond.notify_all()
            finally:
                self._owner = None
        self._record_depth()

    def get(self) -> Any:
        """Dequeue one item, blocking while the channel is empty but still
        open.

        Raises :class:`ChannelClosed` when the channel is drained and every
        producer is done, and :class:`PipelineAborted` when the channel is
        (or becomes, while blocked) aborted.
        """
        t0 = monotonic()
        with self._cond:
            self._owner = threading.get_ident()
            try:
                while (
                    not self._items
                    and self._producers_left > 0
                    and not self._aborted
                ):
                    self._wait(self._get_waiters, t0)
                if self._aborted:
                    raise PipelineAborted(f"channel {self.name} aborted")
                if not self._items:
                    raise ChannelClosed(self.name)
                self._advance_clock()
                self._blocked_get += monotonic() - t0
                item = self._items.popleft()
                self._n_get += 1
                self._cond.notify_all()
            finally:
                self._owner = None
        self._record_depth()
        return item

    def producer_done(self) -> None:
        """Signal that one upstream worker will produce no more items."""
        with self._cond:
            self._producers_left -= 1
            if self._producers_left <= 0:
                self._cond.notify_all()

    def abort(self) -> None:
        """Fail-fast: wake every blocked ``put``/``get`` with an error."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    # ----------------------------------------------------------- inspection

    @property
    def closed(self) -> bool:
        """True when every producer is done and the queue is drained."""
        with self._cond:
            return self._producers_left <= 0 and not self._items

    def depth(self) -> int:
        """Current number of queued items."""
        with self._cond:
            return len(self._items)

    def waiters(self) -> ChannelWaiters:
        """Watchdog-safe snapshot of the threads blocked on this channel.

        Never blocks: a non-blocking acquire is attempted for a consistent
        view; when some thread holds the lock (exactly the situation a
        deadlock watchdog inspects) the snapshot is taken lock-free instead
        — racy but safe, since the waiter dicts are only ever mutated
        under the lock and copied atomically here.
        """
        acquired = self._cond.acquire(blocking=False)
        try:
            return ChannelWaiters(
                put=tuple(self._put_waiters.values()),
                get=tuple(self._get_waiters.values()),
                owner=self._owner,
            )
        finally:
            if acquired:
                self._cond.release()

    def stats(self) -> QueueStats:
        """Lifetime statistics (time-averaged occupancy in [0, 1])."""
        with self._cond:
            self._advance_clock()
            elapsed = self._last_change - self._born
            occupancy = (
                self._depth_integral / (elapsed * self.capacity) if elapsed > 0 else 0.0
            )
            return QueueStats(
                name=self.name,
                capacity=self.capacity,
                n_put=self._n_put,
                n_get=self._n_get,
                max_depth=self._max_depth,
                blocked_put_seconds=self._blocked_put,
                blocked_get_seconds=self._blocked_get,
                occupancy=occupancy,
            )


class CreditGate:
    """Counting semaphore bounding the work groups in flight (``n_buffers``).

    The producer acquires one credit per emitted work group; the terminal
    stage releases it once the group is fully retired.  Abortable, so a
    failing pipeline never leaves the producer blocked.
    """

    def __init__(
        self, credits: int, telemetry: Telemetry | None = None, name: str = "in_flight"
    ) -> None:
        if credits <= 0:
            raise ValueError("credits must be positive")
        self.credits = credits
        self.name = name
        self._telemetry = telemetry
        self._available = credits
        self._cond = threading.Condition()
        self._aborted = False
        self._waiters: dict[int, WaiterInfo] = {}

    def acquire(self) -> None:
        """Take one credit, blocking until one is free.

        Raises :class:`PipelineAborted` when the gate is (or becomes, while
        blocked) aborted.
        """
        t0 = monotonic()
        with self._cond:
            ident = threading.get_ident()
            while self._available <= 0 and not self._aborted:
                self._waiters[ident] = WaiterInfo(
                    ident, threading.current_thread().name, t0
                )
                try:
                    self._cond.wait()
                finally:
                    self._waiters.pop(ident, None)
            if self._aborted:
                raise PipelineAborted(f"gate {self.name} aborted")
            self._available -= 1
            in_flight = self.credits - self._available
        if self._telemetry is not None:
            self._telemetry.record_gauge(self.name, in_flight)

    def release(self) -> None:
        """Return one credit (a work group fully retired)."""
        with self._cond:
            self._available += 1
            in_flight = self.credits - self._available
            self._cond.notify_all()
        if self._telemetry is not None:
            self._telemetry.record_gauge(self.name, in_flight)

    def abort(self) -> None:
        """Wake any blocked :meth:`acquire` with an error."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def in_flight(self) -> int:
        """Credits currently held (acquired and not yet released)."""
        with self._cond:
            return self.credits - self._available

    def waiters(self) -> tuple[WaiterInfo, ...]:
        """Watchdog-safe snapshot of threads blocked in :meth:`acquire`
        (same non-blocking contract as :meth:`Channel.waiters`)."""
        acquired = self._cond.acquire(blocking=False)
        try:
            return tuple(self._waiters.values())
        finally:
            if acquired:
                self._cond.release()
