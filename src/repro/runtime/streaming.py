"""Streaming IDG: the pipeline of Fig 4 run as an executable stage graph.

``StreamingIDG`` is a drop-in equivalent of :class:`repro.core.IDG`'s
``grid``/``degrid`` that executes the paper's schedule for real instead of
simulating it (:mod:`repro.perfmodel.streams`):

* gridding:    plan splitter -> gridder worker(s) -> subgrid FFT -> adder,
* degridding:  plan splitter -> subgrid splitter -> subgrid iFFT ->
  degridder worker(s),

with every hop a bounded channel and a global credit gate holding at most
``n_buffers`` work groups in flight — ``n_buffers=1`` degenerates to the
serial schedule, ``n_buffers=3`` is the paper's triple buffering (Fig 7).
The stage bodies are the *same kernels* the serial pipeline uses
(:func:`~repro.core.gridder.grid_work_group`,
:func:`~repro.core.degridder.degrid_work_group`, the batched subgrid FFTs and
the row-parallel adder), so results are bit-identical to ``IDG``: the adder
stage applies batches in plan order (a reorder buffer absorbs out-of-order
completion when ``gridder_workers > 1``), and degridding work items write
disjoint visibility blocks.

Every run produces a :class:`~repro.runtime.telemetry.Telemetry` (span
timings, queue occupancy, visibilities/sec) exportable as a Chrome trace —
see ``benchmarks/bench_runtime_overlap.py`` for the measured-vs-modeled
comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.constants import COMPLEX_DTYPE
from repro.core.pipeline import IDG, mask_flagged
from repro.core.plan import Plan
from repro.runtime.graph import StageGraph
from repro.runtime.queues import CreditGate
from repro.runtime.telemetry import Telemetry


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunable parameters of the streaming runtime.

    Attributes
    ----------
    n_buffers:
        Work groups allowed in flight end to end, and the capacity of every
        inter-stage channel (1 = serial schedule, 3 = the paper's triple
        buffering).
    gridder_workers:
        Threads in the gridder stage (its BLAS products release the GIL).
    fft_workers:
        Threads in the subgrid FFT/iFFT stage.
    adder_row_workers:
        Row bands of the lock-free adder (`1` uses the serial fast path,
        which is bit-identical to :func:`repro.core.adder.add_subgrids`).
    degridder_workers:
        Threads in the degridder stage (work items write disjoint blocks,
        so no synchronisation is needed).
    emulate_pcie_gbs:
        When set, insert ``htod``/``dtoh`` transfer stages that occupy the
        link for ``bytes / bandwidth`` seconds of real wall time without
        holding the CPU (``time.sleep``) — the host-side stand-in for the
        PCIe copies the paper's three-stream schedule hides (Fig 7), on a
        machine with no accelerator.  ``None`` (default) adds no transfer
        stages.
    """

    n_buffers: int = 3
    gridder_workers: int = 1
    fft_workers: int = 1
    adder_row_workers: int = 1
    degridder_workers: int = 1
    emulate_pcie_gbs: float | None = None

    def __post_init__(self) -> None:
        for name in (
            "n_buffers", "gridder_workers", "fft_workers",
            "adder_row_workers", "degridder_workers",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.emulate_pcie_gbs is not None and self.emulate_pcie_gbs <= 0:
            raise ValueError("emulate_pcie_gbs must be positive")


def chunk_transfer_bytes(plan: Plan, start: int, stop: int) -> tuple[float, float]:
    """(bytes in, bytes out) of one gridding work group over the emulated
    device link: the work items' visibilities and uvw in, their uv-domain
    subgrids out (degridding is the mirror image)."""
    rows = plan.items[start:stop]
    n_timesteps = int((rows["time_end"] - rows["time_start"]).sum())
    itemsize = np.dtype(COMPLEX_DTYPE).itemsize
    bytes_in = float(n_timesteps) * (plan.n_channels * 4 * itemsize + 3 * 8)
    bytes_out = float(stop - start) * plan.subgrid_size**2 * 4 * itemsize
    return bytes_in, bytes_out


class StreamingIDG:
    """Pipelined gridding/degridding over a bounded stage graph.

    Parameters
    ----------
    idg:
        The configured serial pipeline supplying kernels, taper and plan
        geometry.
    config:
        Runtime parameters (buffer count, per-stage worker counts).

    The telemetry of the most recent run is kept on ``last_telemetry``.
    """

    def __init__(self, idg: IDG, config: RuntimeConfig | None = None) -> None:
        self.idg = idg
        self.config = config or RuntimeConfig()
        self.last_telemetry: Telemetry | None = None

    # ------------------------------------------------------------- internal

    def _gated_chunks(
        self, plan: Plan, gate: CreditGate
    ) -> Iterator[tuple[int, int]]:
        """Plan-chunk splitter: one credit per emitted work group."""
        for chunk in plan.work_groups(self.idg.config.work_group_size):
            gate.acquire()
            yield chunk

    def _transfer(self, nbytes: float) -> None:
        """Occupy the emulated device link for ``nbytes`` without holding
        the CPU (the DMA analogue; no-op when emulation is off)."""
        gbs = self.config.emulate_pcie_gbs
        if gbs is not None:
            time.sleep(nbytes / (gbs * 1e9))

    # ------------------------------------------------------------- gridding

    def grid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None = None,
        grid: np.ndarray | None = None,
        flags: np.ndarray | None = None,
        telemetry: Telemetry | None = None,
    ) -> np.ndarray:
        """Pipelined equivalent of :meth:`repro.core.IDG.grid`.

        Identical signature and bit-identical result; accepts an optional
        ``telemetry`` recorder (also stored on ``last_telemetry``).
        """
        idg = self.idg
        backend = idg.backend
        idg._check_shapes(plan, uvw_m, visibilities)
        visibilities = mask_flagged(visibilities, flags)
        if grid is None:
            grid = idg.gridspec.allocate_grid(dtype=COMPLEX_DTYPE)
        fields = idg.aterm_fields(plan, aterms)
        out_grid = grid

        tm = telemetry if telemetry is not None else Telemetry()
        gate = CreditGate(self.config.n_buffers, telemetry=tm, name="in_flight")
        pending: dict[int, tuple[int, np.ndarray]] = {}
        next_seq = 0

        def do_grid(seq: int, chunk: tuple[int, int]) -> tuple[int, np.ndarray]:
            start, stop = chunk
            subgrids = backend.grid_work_group(
                plan, start, stop, uvw_m, visibilities, idg.taper,
                lmn=idg.lmn, aterm_fields=fields,
                vis_batch=idg.config.vis_batch,
                channel_recurrence=idg.config.channel_recurrence,
                batched=idg.config.batched,
            )
            return (start, subgrids)

        def do_fft(seq: int, payload: tuple[int, np.ndarray]) -> tuple[int, np.ndarray]:
            start, subgrids = payload
            return (start, backend.subgrids_to_fourier(subgrids))

        def do_add(seq: int, payload: tuple[int, np.ndarray]) -> None:
            # Apply batches in plan order so the floating-point accumulation
            # order — and hence the result — is bit-identical to the serial
            # adder, even when gridder workers complete out of order.
            nonlocal next_seq
            pending[seq] = payload
            while next_seq in pending:
                start, fourier = pending.pop(next_seq)
                backend.add_subgrids(
                    out_grid, plan, fourier, start=start,
                    n_workers=self.config.adder_row_workers,
                )
                gate.release()
                next_seq += 1

        def do_htod(seq: int, chunk: tuple[int, int]) -> tuple[int, int]:
            self._transfer(chunk_transfer_bytes(plan, *chunk)[0])
            return chunk

        def do_dtoh(seq: int, payload: tuple[int, np.ndarray]) -> tuple[int, np.ndarray]:
            self._transfer(payload[1].nbytes)
            return payload

        graph = StageGraph("grid", n_buffers=self.config.n_buffers, telemetry=tm)
        graph.add_abortable(gate)
        graph.add_source("splitter", self._gated_chunks(plan, gate))
        if self.config.emulate_pcie_gbs is not None:
            graph.add_stage("htod", do_htod)
        graph.add_stage("gridder", do_grid, workers=self.config.gridder_workers)
        graph.add_stage("subgrid_fft", do_fft, workers=self.config.fft_workers)
        if self.config.emulate_pcie_gbs is not None:
            graph.add_stage("dtoh", do_dtoh)
        graph.add_sink("adder", do_add)
        tm.add_counter("visibilities", plan.statistics.n_visibilities_gridded)
        tm.add_counter("work_groups", plan.n_subgrids)
        graph.run()
        self.last_telemetry = tm
        return out_grid

    # ----------------------------------------------------------- degridding

    def degrid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        grid: np.ndarray,
        aterms: ATermGenerator | None = None,
        telemetry: Telemetry | None = None,
    ) -> np.ndarray:
        """Pipelined equivalent of :meth:`repro.core.IDG.degrid`."""
        idg = self.idg
        backend = idg.backend
        fields = idg.aterm_fields(plan, aterms)
        n_bl, n_times, _ = uvw_m.shape
        out = np.zeros((n_bl, n_times, plan.n_channels, 2, 2), dtype=COMPLEX_DTYPE)

        tm = telemetry if telemetry is not None else Telemetry()
        gate = CreditGate(self.config.n_buffers, telemetry=tm, name="in_flight")

        def do_split(
            seq: int, chunk: tuple[int, int]
        ) -> tuple[tuple[int, int], np.ndarray]:
            start, stop = chunk
            return (chunk, backend.split_subgrids(grid, plan, start, stop))

        def do_ifft(
            seq: int, payload: tuple[tuple[int, int], np.ndarray]
        ) -> tuple[tuple[int, int], np.ndarray]:
            chunk, patches = payload
            return (chunk, backend.subgrids_to_image(patches))

        emulate = self.config.emulate_pcie_gbs is not None

        def do_degrid(
            seq: int, payload: tuple[tuple[int, int], np.ndarray]
        ) -> tuple[int, int]:
            (start, stop), images = payload
            # Work items cover disjoint (baseline, time, channel) blocks, so
            # concurrent workers write `out` without synchronisation.
            backend.degrid_work_group(
                plan, start, stop, images, uvw_m, out, idg.taper,
                lmn=idg.lmn, aterm_fields=fields,
                vis_batch=idg.config.vis_batch,
                channel_recurrence=idg.config.channel_recurrence,
                batched=idg.config.batched,
            )
            if not emulate:
                gate.release()
            return (start, stop)

        def do_htod(
            seq: int, payload: tuple[tuple[int, int], np.ndarray]
        ) -> tuple[tuple[int, int], np.ndarray]:
            self._transfer(payload[1].nbytes)
            return payload

        def do_dtoh(seq: int, chunk: tuple[int, int]) -> None:
            self._transfer(chunk_transfer_bytes(plan, *chunk)[0])
            gate.release()

        graph = StageGraph("degrid", n_buffers=self.config.n_buffers, telemetry=tm)
        graph.add_abortable(gate)
        graph.add_source("splitter", self._gated_chunks(plan, gate))
        graph.add_stage("subgrid_split", do_split)
        if emulate:
            graph.add_stage("htod", do_htod)
        graph.add_stage("subgrid_ifft", do_ifft, workers=self.config.fft_workers)
        if emulate:
            graph.add_stage("degridder", do_degrid,
                            workers=self.config.degridder_workers)
            graph.add_sink("dtoh", do_dtoh)
        else:
            graph.add_sink("degridder", do_degrid, workers=self.config.degridder_workers)
        tm.add_counter("visibilities", plan.statistics.n_visibilities_gridded)
        tm.add_counter("work_groups", plan.n_subgrids)
        graph.run()
        self.last_telemetry = tm
        return out


def modeled_schedule_jobs(
    telemetry: Telemetry, stages: tuple[Any, Any, Any]
) -> list[Any]:
    """Per-work-group durations of three streams from a measured run, in the
    job format :func:`repro.perfmodel.streams.schedule_buffers` takes — the
    bridge between a measured trace and the Fig 7 simulation.

    Each of the three entries is a stage name or a tuple of stage names
    whose per-item durations are summed (e.g. ``("htod", ("gridder",
    "subgrid_fft"), "dtoh")`` folds the compute stages into one stream).
    """
    streams: list[list[float]] = []
    for entry in stages:
        names = (entry,) if isinstance(entry, str) else tuple(entry)
        per_stage = [telemetry.stage_durations(name) for name in names]
        n = min((len(d) for d in per_stage), default=0)
        streams.append([sum(d[k] for d in per_stage) for k in range(n)])
    n_jobs = min(len(s) for s in streams)
    return [tuple(s[k] for s in streams) for k in range(n_jobs)]
