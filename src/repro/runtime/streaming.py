"""Streaming IDG: the pipeline of Fig 4 run as an executable stage graph.

``StreamingIDG`` is a drop-in equivalent of :class:`repro.core.IDG`'s
``grid``/``degrid`` that executes the paper's schedule for real instead of
simulating it (:mod:`repro.perfmodel.streams`):

* gridding:    plan splitter -> gridder worker(s) -> subgrid FFT -> adder,
* degridding:  plan splitter -> subgrid splitter -> subgrid iFFT ->
  degridder worker(s),

with every hop a bounded channel and a global credit gate holding at most
``n_buffers`` work groups in flight — ``n_buffers=1`` degenerates to the
serial schedule, ``n_buffers=3`` is the paper's triple buffering (Fig 7).
The stage bodies are the *same kernels* the serial pipeline uses
(:func:`~repro.core.gridder.grid_work_group`,
:func:`~repro.core.degridder.degrid_work_group`, the batched subgrid FFTs and
the row-parallel adder), so results are bit-identical to ``IDG``: the adder
stage applies batches in plan order (a reorder buffer absorbs out-of-order
completion when ``gridder_workers > 1``), and degridding work items write
disjoint visibility blocks.

Fault tolerance (DESIGN.md §11): when ``IDGConfig.max_retries > 0`` (or a
:class:`~repro.runtime.faults.FaultPlan` is installed) every stage call runs
through a :class:`~repro.runtime.recovery.WorkGroupRunner` — transient
failures are retried with exponential backoff, and a work group that
exhausts its budget is quarantined to a dead letter instead of aborting the
run: a :class:`~repro.runtime.recovery.Quarantined` sentinel flows through
the remaining stages so sequencing and credit accounting stay exact, and the
:class:`~repro.runtime.recovery.FaultReport` on ``last_fault_report``
records what was lost.  Gridding can additionally checkpoint the master grid
plus the retired-group set to disk (atomic write-then-rename) and later
resume bit-exactly, skipping completed groups
(:mod:`repro.runtime.checkpoint`).

Every run produces a :class:`~repro.runtime.telemetry.Telemetry` (span
timings, queue occupancy, retry/dead-letter/checkpoint counters,
visibilities/sec) exportable as a Chrome trace — see
``benchmarks/bench_runtime_overlap.py`` and
``benchmarks/bench_fault_recovery.py``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.constants import COMPLEX_DTYPE
from repro.core.pipeline import IDG, prepare_visibilities
from repro.core.plan import Plan
from repro.data.store import ChunkedVisibilitySource
from repro.runtime.checkpoint import load_checkpoint, plan_signature, save_checkpoint
from repro.runtime.faults import FaultPlan
from repro.runtime.graph import StageGraph
from repro.runtime.memory import record_memory_gauges
from repro.runtime.queues import CreditGate
from repro.runtime.recovery import (
    FaultReport,
    Quarantined,
    RetryPolicy,
    WorkGroupRunner,
    group_visibility_count,
)
from repro.runtime.telemetry import Telemetry


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunable parameters of the streaming runtime.

    Attributes
    ----------
    n_buffers:
        Work groups allowed in flight end to end, and the capacity of every
        inter-stage channel (1 = serial schedule, 3 = the paper's triple
        buffering).
    gridder_workers:
        Threads in the gridder stage (its BLAS products release the GIL).
    fft_workers:
        Threads in the subgrid FFT/iFFT stage.
    adder_row_workers:
        Row bands of the lock-free adder (`1` uses the serial fast path,
        which is bit-identical to :func:`repro.core.adder.add_subgrids`).
    degridder_workers:
        Threads in the degridder stage (work items write disjoint blocks,
        so no synchronisation is needed).
    emulate_pcie_gbs:
        When set, insert ``htod``/``dtoh`` transfer stages that occupy the
        link for ``bytes / bandwidth`` seconds of real wall time without
        holding the CPU (``time.sleep``) — the host-side stand-in for the
        PCIe copies the paper's three-stream schedule hides (Fig 7), on a
        machine with no accelerator.  ``None`` (default) adds no transfer
        stages.
    checkpoint_path:
        When set, ``grid`` snapshots the master grid plus the retired
        work-group set to this ``.npz`` path (atomically) every
        ``checkpoint_interval`` retired groups, and once more when the run
        completes.  Ignored by ``degrid`` (its output has no accumulated
        state worth snapshotting — a restarted degrid simply re-runs).
    checkpoint_interval:
        Retired work groups between snapshots.
    resume_from:
        Path of a checkpoint written by a previous ``grid`` run over the
        *same* plan and work-group size (validated by signature); completed
        groups are skipped and the result is bit-identical to an
        uninterrupted run.  The checkpoint grid replaces the contents of
        any caller-supplied ``grid=``.
    """

    n_buffers: int = 3
    gridder_workers: int = 1
    fft_workers: int = 1
    adder_row_workers: int = 1
    degridder_workers: int = 1
    emulate_pcie_gbs: float | None = None
    checkpoint_path: str | None = None
    checkpoint_interval: int = 4
    resume_from: str | None = None

    def __post_init__(self) -> None:
        for name in (
            "n_buffers", "gridder_workers", "fft_workers",
            "adder_row_workers", "degridder_workers", "checkpoint_interval",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.emulate_pcie_gbs is not None and self.emulate_pcie_gbs <= 0:
            raise ValueError("emulate_pcie_gbs must be positive")


def chunk_transfer_bytes(plan: Plan, start: int, stop: int) -> tuple[float, float]:
    """(bytes in, bytes out) of one gridding work group over the emulated
    device link: the work items' visibilities and uvw in, their uv-domain
    subgrids out (degridding is the mirror image)."""
    rows = plan.items[start:stop]
    n_timesteps = int((rows["time_end"] - rows["time_start"]).sum())
    itemsize = np.dtype(COMPLEX_DTYPE).itemsize
    bytes_in = float(n_timesteps) * (plan.n_channels * 4 * itemsize + 3 * 8)
    bytes_out = float(stop - start) * plan.subgrid_size**2 * 4 * itemsize
    return bytes_in, bytes_out


class StreamingIDG:
    """Pipelined gridding/degridding over a bounded stage graph.

    Parameters
    ----------
    idg:
        The configured serial pipeline supplying kernels, taper, plan
        geometry and the retry policy (``IDGConfig.max_retries`` /
        ``retry_backoff_s``).
    config:
        Runtime parameters (buffer count, per-stage worker counts,
        checkpointing).
    faults:
        Optional deterministic fault-injection plan (tests, benchmarks).

    The telemetry of the most recent run is kept on ``last_telemetry``; the
    fault report of the most recent *tolerant* run on ``last_fault_report``
    (``None`` when the fault-tolerance layer was inactive).
    """

    def __init__(
        self,
        idg: IDG,
        config: RuntimeConfig | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.idg = idg
        self.config = config or RuntimeConfig()
        self.faults = faults
        self.last_telemetry: Telemetry | None = None
        self.last_fault_report: FaultReport | None = None

    # ------------------------------------------------------------- internal

    def _runner(self, telemetry: Telemetry) -> WorkGroupRunner | None:
        """A work-group runner when fault tolerance is active, else None
        (the legacy fail-fast path, with zero added overhead)."""
        policy = RetryPolicy(
            max_retries=self.idg.config.max_retries,
            backoff_s=self.idg.config.retry_backoff_s,
        )
        if not policy.enabled and self.faults is None:
            return None
        return WorkGroupRunner(policy, faults=self.faults, telemetry=telemetry)

    def _gated_chunks(
        self,
        chunks: list[tuple[int, tuple[int, int]]],
        gate: CreditGate,
    ) -> Iterator[tuple[int, tuple[int, int]]]:
        """Plan-chunk splitter: one credit per emitted work group.  Each
        item is ``(group, (start, stop))`` with ``group`` the work group's
        plan-order index (stable across resume filtering)."""
        for group, chunk in chunks:
            gate.acquire()
            yield (group, chunk)

    def _transfer(self, nbytes: float) -> None:
        """Occupy the emulated device link for ``nbytes`` without holding
        the CPU (the DMA analogue; no-op when emulation is off)."""
        gbs = self.config.emulate_pcie_gbs
        if gbs is not None:
            time.sleep(nbytes / (gbs * 1e9))

    # ------------------------------------------------------------- gridding

    def grid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None = None,
        grid: np.ndarray | None = None,
        flags: np.ndarray | None = None,
        telemetry: Telemetry | None = None,
    ) -> np.ndarray:
        """Pipelined equivalent of :meth:`repro.core.IDG.grid`.

        Identical signature and bit-identical result; accepts an optional
        ``telemetry`` recorder (also stored on ``last_telemetry``).  With
        fault tolerance active, quarantined work groups are excluded and
        reported on ``last_fault_report`` instead of raising; with
        ``config.checkpoint_path`` set, progress snapshots are written for
        a later bit-exact ``config.resume_from`` run.
        """
        idg = self.idg
        backend = idg.backend
        idg._check_shapes(plan, uvw_m, visibilities)
        visibilities = prepare_visibilities(visibilities, flags)
        source = (
            visibilities
            if isinstance(visibilities, ChunkedVisibilitySource) else None
        )
        if grid is None:
            grid = idg.gridspec.allocate_grid(dtype=COMPLEX_DTYPE)
        fields = idg.aterm_fields(plan, aterms)
        out_grid = grid

        tm = telemetry if telemetry is not None else Telemetry()
        runner = self._runner(tm)
        self.last_fault_report = runner.report if runner is not None else None

        chunks = list(enumerate(plan.work_groups(idg.config.work_group_size)))
        ckpt_path = self.config.checkpoint_path
        signature = None
        if ckpt_path is not None or self.config.resume_from is not None:
            signature = plan_signature(plan, idg.config.work_group_size)
        completed: set[int] = set()
        if self.config.resume_from is not None:
            ckpt = load_checkpoint(self.config.resume_from, signature=signature)
            completed = set(ckpt.completed_set)
            # The snapshot holds the prefix sum of exactly `completed`;
            # resuming continues from those bits (replacing any caller grid).
            out_grid[...] = np.asarray(ckpt.grid).reshape(out_grid.shape)
        pending = [(g, c) for g, c in chunks if g not in completed]

        gate = CreditGate(self.config.n_buffers, telemetry=tm, name="in_flight")
        reorder: dict[int, Any] = {}
        next_seq = 0
        n_retired = 0

        def write_checkpoint() -> None:
            # Runs inside the single-worker adder stage: the grid is quiescent
            # (the adder is its only mutator), so the snapshot is consistent.
            save_checkpoint(
                ckpt_path, out_grid, completed, signature,
                n_retired=n_retired,
            )
            tm.add_counter("checkpoints", 1)
            if runner is not None:
                runner.report.n_checkpoints += 1

        def do_read(
            seq: int, payload: tuple[int, tuple[int, int]]
        ) -> Any:
            # Out-of-core reader stage: materialise exactly the visibility
            # blocks this work group needs (masked, copied off the memory
            # map).  Downstream stages never touch the map, and the credit
            # gate bounds the prefetched groups resident to `n_buffers`.
            group, (start, stop) = payload
            def body():
                return source.prefetch_group(plan, start, stop)
            if runner is None:
                return (group, (start, stop), body())
            result = runner.run(
                "reader", group, body, start=start, stop=stop,
                n_visibilities=group_visibility_count(plan, start, stop),
            )
            if isinstance(result, Quarantined):
                return result
            return (group, (start, stop), result)

        def grid_group(group: int, start: int, stop: int, vis_in: Any) -> Any:
            def body() -> np.ndarray:
                return backend.grid_work_group(
                    plan, start, stop, uvw_m, vis_in, idg.taper,
                    lmn=idg.lmn, aterm_fields=fields,
                    vis_batch=idg.config.vis_batch,
                    channel_recurrence=idg.config.channel_recurrence,
                    batched=idg.config.batched,
                )
            if runner is None:
                return body()
            return runner.run(
                "gridder", group, body, start=start, stop=stop,
                n_visibilities=group_visibility_count(plan, start, stop),
            )

        def do_grid(seq: int, payload: Any) -> Any:
            if isinstance(payload, Quarantined):
                # A reader-stage dead letter: pass the sentinel through so
                # sequencing and credit accounting stay exact.
                return payload
            group, (start, stop) = payload[0], payload[1]
            vis_in = payload[2] if len(payload) == 3 else visibilities
            result = grid_group(group, start, stop, vis_in)
            if isinstance(result, Quarantined):
                return result
            return (group, start, result)

        def do_fft(seq: int, payload: Any) -> Any:
            if isinstance(payload, Quarantined):
                return payload
            group, start, subgrids = payload
            if runner is None:
                return (group, start, backend.subgrids_to_fourier(subgrids))
            result = runner.run(
                "subgrid_fft", group,
                lambda: backend.subgrids_to_fourier(subgrids),
                start=start, stop=start + len(subgrids),
                n_visibilities=group_visibility_count(
                    plan, start, start + len(subgrids)
                ),
            )
            if isinstance(result, Quarantined):
                return result
            return (group, start, result)

        def add_group(group: int, start: int, fourier: np.ndarray) -> Any:
            def body() -> None:
                backend.add_subgrids(
                    out_grid, plan, fourier, start=start,
                    n_workers=self.config.adder_row_workers,
                )
            if runner is None:
                body()
                return None
            stop = start + len(fourier)
            return runner.run(
                "adder", group, body, start=start, stop=stop,
                n_visibilities=group_visibility_count(plan, start, stop),
            )

        def do_add(seq: int, payload: Any) -> None:
            # Apply batches in plan order so the floating-point accumulation
            # order — and hence the result — is bit-identical to the serial
            # adder, even when gridder workers complete out of order.
            nonlocal next_seq, n_retired
            reorder[seq] = payload
            while next_seq in reorder:
                item = reorder.pop(next_seq)
                if isinstance(item, Quarantined):
                    # Dead-lettered upstream: nothing to add, but the group
                    # still releases its credit and advances the sequence.
                    pass
                else:
                    group, start, fourier = item
                    result = add_group(group, start, fourier)
                    if not isinstance(result, Quarantined):
                        completed.add(group)
                gate.release()
                next_seq += 1
                n_retired += 1
                if source is not None and n_retired % 8 == 0:
                    # Retired groups' file pages are dead weight: evict them
                    # and snapshot the memory gauges so the trace shows RSS
                    # staying flat as data streams through.  Every 8th group
                    # is often enough — each madvise sweep walks the whole
                    # mapping's page tables, and the un-evicted residue is
                    # bounded by 8 groups' worth of file pages.
                    source.drop_caches()
                    record_memory_gauges(tm)
                if ckpt_path is not None and (
                    n_retired % self.config.checkpoint_interval == 0
                ):
                    write_checkpoint()

        def do_htod(seq: int, payload: Any) -> Any:
            if not isinstance(payload, Quarantined):
                self._transfer(chunk_transfer_bytes(plan, *payload[1])[0])
            return payload

        def do_dtoh(seq: int, payload: Any) -> Any:
            if not isinstance(payload, Quarantined):
                self._transfer(payload[2].nbytes)
            return payload

        graph = StageGraph("grid", n_buffers=self.config.n_buffers, telemetry=tm)
        graph.add_abortable(gate)
        graph.add_source("splitter", self._gated_chunks(pending, gate))
        if source is not None:
            # Disk-read stage ahead of the (emulated) device upload: with
            # the credit gate upstream, at most `n_buffers` prefetched
            # groups exist at once — the RSS bound of the out-of-core path.
            graph.add_stage("reader", do_read)
        if self.config.emulate_pcie_gbs is not None:
            graph.add_stage("htod", do_htod)
        graph.add_stage("gridder", do_grid, workers=self.config.gridder_workers)
        graph.add_stage("subgrid_fft", do_fft, workers=self.config.fft_workers)
        if self.config.emulate_pcie_gbs is not None:
            graph.add_stage("dtoh", do_dtoh)
        graph.add_sink("adder", do_add)
        tm.add_counter("visibilities", plan.statistics.n_visibilities_gridded)
        tm.add_counter("work_groups", plan.n_subgrids)
        graph.run()
        if runner is not None:
            runner.report.n_groups = len(chunks)
            runner.report.n_groups_completed = len(completed)
        if ckpt_path is not None:
            write_checkpoint()
        record_memory_gauges(tm)
        self.last_telemetry = tm
        return out_grid

    # ----------------------------------------------------------- degridding

    def degrid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        grid: np.ndarray,
        aterms: ATermGenerator | None = None,
        telemetry: Telemetry | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Pipelined equivalent of :meth:`repro.core.IDG.degrid`.

        With fault tolerance active, a quarantined work group leaves its
        visibility block zero (the same convention the plan uses for
        unplaceable samples) and is reported on ``last_fault_report``.
        ``out`` (zero-initialised, e.g. a writable dataset-store map)
        receives the prediction in place as on the serial executor.
        """
        idg = self.idg
        backend = idg.backend
        fields = idg.aterm_fields(plan, aterms)
        n_bl, n_times, _ = uvw_m.shape
        expected = (n_bl, n_times, plan.n_channels, 2, 2)
        if out is None:
            out = np.zeros(expected, dtype=COMPLEX_DTYPE)
        elif out.shape != expected:
            raise ValueError(f"out shape {out.shape} != {expected}")

        tm = telemetry if telemetry is not None else Telemetry()
        runner = self._runner(tm)
        self.last_fault_report = runner.report if runner is not None else None
        gate = CreditGate(self.config.n_buffers, telemetry=tm, name="in_flight")
        chunks = list(enumerate(plan.work_groups(idg.config.work_group_size)))
        n_completed = 0
        completed_lock = threading.Lock()

        def run_stage(
            stage: str, group: int, chunk: tuple[int, int], body: Any
        ) -> Any:
            if runner is None:
                return body()
            start, stop = chunk
            return runner.run(
                stage, group, body, start=start, stop=stop,
                n_visibilities=group_visibility_count(plan, start, stop),
            )

        def do_split(
            seq: int, payload: tuple[int, tuple[int, int]]
        ) -> Any:
            group, chunk = payload
            result = run_stage(
                "subgrid_split", group, chunk,
                lambda: backend.split_subgrids(grid, plan, *chunk),
            )
            if isinstance(result, Quarantined):
                return result
            return (group, chunk, result)

        def do_ifft(seq: int, payload: Any) -> Any:
            if isinstance(payload, Quarantined):
                return payload
            group, chunk, patches = payload
            result = run_stage(
                "subgrid_ifft", group, chunk,
                lambda: backend.subgrids_to_image(patches),
            )
            if isinstance(result, Quarantined):
                return result
            return (group, chunk, result)

        emulate = self.config.emulate_pcie_gbs is not None

        def do_degrid(seq: int, payload: Any) -> Any:
            nonlocal n_completed
            if isinstance(payload, Quarantined):
                if not emulate:
                    gate.release()
                return payload
            group, chunk, images = payload

            def body() -> None:
                # Work items cover disjoint (baseline, time, channel) blocks,
                # so concurrent workers write `out` without synchronisation.
                start, stop = chunk
                backend.degrid_work_group(
                    plan, start, stop, images, uvw_m, out, idg.taper,
                    lmn=idg.lmn, aterm_fields=fields,
                    vis_batch=idg.config.vis_batch,
                    channel_recurrence=idg.config.channel_recurrence,
                    batched=idg.config.batched,
                )

            result = run_stage("degridder", group, chunk, body)
            if not isinstance(result, Quarantined):
                with completed_lock:
                    n_completed += 1
            if not emulate:
                gate.release()
            return (group, chunk)

        def do_htod(seq: int, payload: Any) -> Any:
            if not isinstance(payload, Quarantined):
                self._transfer(payload[2].nbytes)
            return payload

        def do_dtoh(seq: int, payload: Any) -> None:
            if not isinstance(payload, Quarantined):
                self._transfer(chunk_transfer_bytes(plan, *payload[1])[0])
            gate.release()

        graph = StageGraph("degrid", n_buffers=self.config.n_buffers, telemetry=tm)
        graph.add_abortable(gate)
        graph.add_source("splitter", self._gated_chunks(chunks, gate))
        graph.add_stage("subgrid_split", do_split)
        if emulate:
            graph.add_stage("htod", do_htod)
        graph.add_stage("subgrid_ifft", do_ifft, workers=self.config.fft_workers)
        if emulate:
            graph.add_stage("degridder", do_degrid,
                            workers=self.config.degridder_workers)
            graph.add_sink("dtoh", do_dtoh)
        else:
            graph.add_sink("degridder", do_degrid, workers=self.config.degridder_workers)
        tm.add_counter("visibilities", plan.statistics.n_visibilities_gridded)
        tm.add_counter("work_groups", plan.n_subgrids)
        graph.run()
        if runner is not None:
            runner.report.n_groups = len(chunks)
            runner.report.n_groups_completed = n_completed
        record_memory_gauges(tm)
        self.last_telemetry = tm
        return out


def modeled_schedule_jobs(
    telemetry: Telemetry, stages: tuple[Any, Any, Any]
) -> list[Any]:
    """Per-work-group durations of three streams from a measured run, in the
    job format :func:`repro.perfmodel.streams.schedule_buffers` takes — the
    bridge between a measured trace and the Fig 7 simulation.

    Each of the three entries is a stage name or a tuple of stage names
    whose per-item durations are summed (e.g. ``("htod", ("gridder",
    "subgrid_fft"), "dtoh")`` folds the compute stages into one stream).
    """
    streams: list[list[float]] = []
    for entry in stages:
        names = (entry,) if isinstance(entry, str) else tuple(entry)
        per_stage = [telemetry.stage_durations(name) for name in names]
        n = min((len(d) for d in per_stage), default=0)
        streams.append([sum(d[k] for d in per_stage) for k in range(n)])
    n_jobs = min(len(s) for s in streams)
    return [tuple(s[k] for s in streams) for k in range(n_jobs)]
