"""Streaming pipeline runtime (executable Fig 7).

An executable stage-graph runtime for the IDG pipeline: producer/consumer
stages connected by bounded channels with real backpressure, a credit gate
bounding the work groups in flight (``n_buffers``), built-in telemetry with a
Chrome-trace exporter, and graceful error propagation.

* :class:`StreamingIDG` / :class:`RuntimeConfig` — the drop-in pipelined
  ``grid``/``degrid``;
* :class:`StageGraph` — the generic pipeline executor;
* :class:`Channel` / :class:`CreditGate` — the bounded-buffer primitives;
* :class:`Telemetry` — spans, gauges, counters, ``chrome://tracing`` export.

Fault tolerance (DESIGN.md §11):

* :class:`RetryPolicy` / :class:`WorkGroupRunner` — bounded-budget retry
  with exponential backoff around per-work-group stage calls;
* :class:`DeadLetter` / :class:`FaultReport` / :class:`Quarantined` —
  quarantine accounting when a group exhausts its budget;
* :class:`FaultSpec` / :class:`FaultPlan` — deterministic fault injection
  for tests and ``benchmarks/bench_fault_recovery.py``;
* :func:`save_checkpoint` / :func:`load_checkpoint` /
  :func:`plan_signature` — atomic grid snapshots for bit-exact resume.
"""

from repro.runtime.checkpoint import (
    GridCheckpoint,
    load_checkpoint,
    plan_signature,
    save_checkpoint,
)
from repro.runtime.faults import (
    CorruptDataError,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
)
from repro.runtime.graph import StageGraph
from repro.runtime.memory import peak_rss_bytes, record_memory_gauges, rss_bytes
from repro.runtime.queues import Channel, ChannelClosed, CreditGate, PipelineAborted
from repro.runtime.recovery import (
    DeadLetter,
    FaultReport,
    Quarantined,
    RetryPolicy,
    WorkGroupRunner,
    group_visibility_count,
)
from repro.runtime.streaming import RuntimeConfig, StreamingIDG, modeled_schedule_jobs
from repro.runtime.telemetry import GaugeSample, QueueStats, Span, Telemetry

__all__ = [
    "Channel",
    "ChannelClosed",
    "CorruptDataError",
    "CreditGate",
    "DeadLetter",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "GaugeSample",
    "GridCheckpoint",
    "InjectedCrash",
    "InjectedFault",
    "PipelineAborted",
    "QueueStats",
    "Quarantined",
    "RetryPolicy",
    "RuntimeConfig",
    "Span",
    "StageGraph",
    "StreamingIDG",
    "Telemetry",
    "WorkGroupRunner",
    "group_visibility_count",
    "load_checkpoint",
    "modeled_schedule_jobs",
    "peak_rss_bytes",
    "plan_signature",
    "record_memory_gauges",
    "rss_bytes",
    "save_checkpoint",
]
