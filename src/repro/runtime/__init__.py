"""Streaming pipeline runtime (executable Fig 7).

An executable stage-graph runtime for the IDG pipeline: producer/consumer
stages connected by bounded channels with real backpressure, a credit gate
bounding the work groups in flight (``n_buffers``), built-in telemetry with a
Chrome-trace exporter, and graceful error propagation.

* :class:`StreamingIDG` / :class:`RuntimeConfig` — the drop-in pipelined
  ``grid``/``degrid``;
* :class:`StageGraph` — the generic pipeline executor;
* :class:`Channel` / :class:`CreditGate` — the bounded-buffer primitives;
* :class:`Telemetry` — spans, gauges, counters, ``chrome://tracing`` export.
"""

from repro.runtime.graph import StageGraph
from repro.runtime.queues import Channel, ChannelClosed, CreditGate, PipelineAborted
from repro.runtime.streaming import RuntimeConfig, StreamingIDG, modeled_schedule_jobs
from repro.runtime.telemetry import GaugeSample, QueueStats, Span, Telemetry

__all__ = [
    "Channel",
    "ChannelClosed",
    "CreditGate",
    "GaugeSample",
    "PipelineAborted",
    "QueueStats",
    "RuntimeConfig",
    "Span",
    "StageGraph",
    "StreamingIDG",
    "Telemetry",
    "modeled_schedule_jobs",
]
