"""Deterministic fault injection for the fault-tolerance layer.

A :class:`FaultPlan` is a seeded, reproducible schedule of failures: it names
the pipeline stage and work-group index where each fault strikes, what kind
of fault it is, and for how many *attempts* it keeps striking — so a
transient fault (``times=1``) succeeds on the first retry while a permanent
one (``times=-1``) exhausts the retry budget and is quarantined.  The same
plan drives the unit tests, the executor failure-injection matrix and
``benchmarks/bench_fault_recovery.py``, which is what makes recovery
behaviour testable at all: every run with the same plan fails in exactly the
same places.

Fault kinds
-----------
``raise``
    Raise :class:`InjectedFault` at stage entry, before the stage body runs —
    the model of a worker blowing up (OOM, kernel assertion) while the work
    group's inputs are still intact, so a retry is always safe.
``corrupt``
    Let the stage body run, then raise :class:`CorruptDataError` when the
    result is screened — the model of a corrupt visibility block or a failed
    DMA-analogue transfer caught by a checksum *after* the work was done.
``delay``
    Sleep ``delay_s`` seconds at stage entry and then succeed — a straggler,
    not a failure; it never consumes a retry.
``crash``
    Raise :class:`InjectedCrash`, which deliberately derives from
    ``BaseException`` so the retry layer does *not* catch it: the whole run
    aborts, the model of a process kill.  Used by the checkpoint/resume
    round-trip tests.

Injection sites call :meth:`FaultPlan.fire` at stage entry and
:meth:`FaultPlan.screen` on the stage result; both are thread-safe and are
only invoked at all when a plan is installed, so the no-injection path costs
nothing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = [
    "CorruptDataError",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
]

_KINDS = ("raise", "corrupt", "delay", "crash")


class InjectedFault(RuntimeError):
    """A fault raised at stage entry by an installed :class:`FaultPlan`."""


class CorruptDataError(RuntimeError):
    """A stage result failed its (simulated) integrity screen."""


class InjectedCrash(BaseException):
    """An unrecoverable injected failure (simulated process kill).

    Derives from ``BaseException`` on purpose: the retry layer catches only
    ``Exception``, so a crash always aborts the whole run — which is exactly
    what the checkpoint/resume tests need to interrupt a pipeline mid-flight.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: where it strikes and how often.

    Attributes
    ----------
    stage:
        Stage name the fault targets (``"gridder"``, ``"subgrid_fft"``,
        ``"adder"``, ``"degridder"``, ...).
    group:
        Work-group sequence index (position in plan order) it strikes.
    kind:
        One of ``raise``/``corrupt``/``delay``/``crash`` (module docstring).
    times:
        Number of *attempts* the fault affects before the stage succeeds;
        ``-1`` means every attempt (a permanent fault).
    delay_s:
        Sleep duration for ``delay`` faults.
    """

    stage: str
    group: int
    kind: str = "raise"
    times: int = 1
    delay_s: float = 0.01

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.times == 0 or self.times < -1:
            raise ValueError("times must be positive or -1 (every attempt)")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` entries.

    The plan keeps one attempt counter per ``(stage, group)`` target, so a
    spec with ``times=2`` fails the first two attempts of that stage on that
    work group and succeeds from the third on — independent of which thread
    executes the attempt.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self._specs: dict[tuple[str, int], FaultSpec] = {}
        for spec in specs:
            key = (spec.stage, spec.group)
            if key in self._specs:
                raise ValueError(f"duplicate fault spec for {key}")
            self._specs[key] = spec
        self._lock = threading.Lock()
        self._attempt_count: dict[tuple[str, int], int] = {}
        self._pending_corrupt: set[tuple[str, int]] = set()

    # ------------------------------------------------------------ factories

    @classmethod
    def single(cls, stage: str, group: int, **kwargs: Any) -> "FaultPlan":
        """A plan with one fault (keyword args forwarded to FaultSpec)."""
        return cls([FaultSpec(stage=stage, group=group, **kwargs)])

    @classmethod
    def random(
        cls,
        seed: int,
        stages: Iterable[str],
        n_groups: int,
        rate: float = 0.1,
        kinds: Iterable[str] = ("raise",),
        times: int = 1,
        delay_s: float = 0.01,
    ) -> "FaultPlan":
        """A seeded random plan: each (stage, group) pair faults with
        probability ``rate``, drawing its kind uniformly from ``kinds``."""
        if not (0.0 <= rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        rng = np.random.default_rng(seed)
        kinds = tuple(kinds)
        specs = []
        for stage in stages:
            for group in range(n_groups):
                if rng.random() < rate:
                    kind = kinds[int(rng.integers(len(kinds)))]
                    specs.append(
                        FaultSpec(stage=stage, group=group, kind=kind,
                                  times=times, delay_s=delay_s)
                    )
        return cls(specs)

    # ------------------------------------------------------------ injection

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        """The scheduled faults, in (stage, group) order."""
        return tuple(self._specs[key] for key in sorted(self._specs))

    def attempts(self, stage: str, group: int) -> int:
        """How many attempts of ``(stage, group)`` have been observed."""
        with self._lock:
            return self._attempt_count.get((stage, group), 0)

    def seed_attempts(self, counts: Mapping[tuple[str, int], int]) -> None:
        """Pre-load attempt counters (process-sharded executor respawns).

        A respawned worker process rebuilds its :class:`FaultPlan` from specs
        and would otherwise restart every counter at zero — a transient
        ``crash`` fault (``times=1``) would then kill the replacement worker
        too, forever.  The parent tracks deaths per target and seeds the
        rebuilt plan so the schedule continues where the dead worker left
        off.  Counters only ever move forward (``max`` with the existing
        value).
        """
        with self._lock:
            for key, n in counts.items():
                n = int(n)
                if n < 0:
                    raise ValueError("seeded attempt counts must be >= 0")
                self._attempt_count[key] = max(
                    self._attempt_count.get(key, 0), n
                )

    def _next_attempt(self, key: tuple[str, int]) -> int:
        with self._lock:
            n = self._attempt_count.get(key, 0) + 1
            self._attempt_count[key] = n
            return n

    def fire(self, stage: str, group: int) -> None:
        """Entry-point injection hook: called before a stage body runs.

        Raises/sleeps according to the spec for ``(stage, group)``; arms the
        result screen for ``corrupt`` faults; a no-op for untargeted keys.
        """
        key = (stage, group)
        spec = self._specs.get(key)
        if spec is None:
            return
        attempt = self._next_attempt(key)
        failing = spec.times < 0 or attempt <= spec.times
        if not failing:
            return
        if spec.kind == "raise":
            raise InjectedFault(
                f"injected fault at stage {stage!r}, work group {group} "
                f"(attempt {attempt})"
            )
        if spec.kind == "crash":
            raise InjectedCrash(
                f"injected crash at stage {stage!r}, work group {group}"
            )
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
            return
        # corrupt: let the stage run, fail the screen on its result
        with self._lock:
            self._pending_corrupt.add(key)

    def screen(self, stage: str, group: int, result: Any) -> Any:
        """Result-integrity hook: called on a stage's return value.

        Raises :class:`CorruptDataError` when :meth:`fire` armed a
        corruption for this attempt; otherwise passes ``result`` through.
        """
        key = (stage, group)
        with self._lock:
            armed = key in self._pending_corrupt
            self._pending_corrupt.discard(key)
        if armed:
            raise CorruptDataError(
                f"injected corruption detected at stage {stage!r}, "
                f"work group {group}"
            )
        return result

    def __repr__(self) -> str:
        return f"<FaultPlan specs={len(self._specs)}>"
