"""Retry, dead-letter quarantine and fault reporting for work groups.

The fault-tolerance layer shared by every executor (serial :class:`~repro.core.IDG`,
:class:`~repro.parallel.executor.ParallelIDG`,
:class:`~repro.runtime.StreamingIDG`): each per-work-group stage call runs
through a :class:`WorkGroupRunner`, which

* retries failed attempts with exponential backoff under a bounded attempt
  budget (:class:`RetryPolicy`, wired from ``IDGConfig.max_retries`` /
  ``IDGConfig.retry_backoff_s`` and the CLI ``--max-retries`` /
  ``--retry-backoff`` flags);
* quarantines a work group that exhausts its budget into a
  :class:`DeadLetter` (plan indices, final exception, attempt count) instead
  of aborting the run — the stage call returns a :class:`Quarantined`
  sentinel and the executor excludes that group's visibilities, with the
  loss recorded for flag/weight accounting;
* feeds retry/dead-letter counters and retry-backoff spans into the run's
  :class:`~repro.runtime.telemetry.Telemetry`.

The whole layer is opt-in: with retries disabled and no fault plan installed
the executors never construct a runner, so the legacy fail-fast path runs
unchanged with zero overhead (measured by
``benchmarks/bench_fault_recovery.py``).

What is *not* exactly-once: gridder/FFT/splitter stages are pure functions
of their inputs, so a retry re-runs them safely.  The adder mutates the
master grid; injected adder faults strike at stage entry (before any
mutation) and retry cleanly, but a genuine exception part-way through an
accumulation can leave a partial contribution behind — such a group is
quarantined and counted, yet the grid may hold a fraction of it.  See
DESIGN.md §11 for the full failure model.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtime.faults import FaultPlan
from repro.runtime.telemetry import Telemetry, monotonic

__all__ = [
    "DeadLetter",
    "FaultReport",
    "Quarantined",
    "RetryPolicy",
    "WorkGroupRunner",
    "group_visibility_count",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-attempt retry with exponential backoff.

    Attributes
    ----------
    max_retries:
        Retry attempts per stage call beyond the first try (0 disables the
        fault-tolerance layer entirely: failures propagate immediately).
    backoff_s:
        Backoff before the first retry; retry ``k`` waits
        ``backoff_s * backoff_factor**(k-1)`` seconds, capped.
    backoff_factor:
        Exponential growth factor between consecutive retries.
    max_backoff_s:
        Upper bound on a single backoff sleep.
    """

    max_retries: int = 0
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.max_retries > 0

    def backoff(self, retry: int) -> float:
        """Backoff seconds before retry number ``retry`` (1-based)."""
        if retry <= 0:
            raise ValueError("retry is 1-based")
        return min(
            self.backoff_s * self.backoff_factor ** (retry - 1),
            self.max_backoff_s,
        )


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined work group: what failed, where, and what it cost."""

    stage: str
    group: int  # work-group sequence index in plan order
    start: int  # first plan item of the group
    stop: int  # one past the last plan item
    attempts: int
    error: str  # repr of the final exception
    n_visibilities: int  # covered visibilities excluded from the output


@dataclass(frozen=True)
class Quarantined:
    """Sentinel stage result standing in for a dead-lettered work group.

    Flows through downstream stages (keeping sequence ordering and credit
    accounting intact) instead of the group's real payload.
    """

    group: int
    start: int
    stop: int


@dataclass
class FaultReport:
    """Outcome of one fault-tolerant grid/degrid run.

    Thread-safe for the recording side; executors expose the report on
    ``last_fault_report`` after every tolerant run (``ok`` is True when
    nothing was quarantined).
    """

    dead_letters: list[DeadLetter] = field(default_factory=list)
    n_retries: int = 0
    n_groups: int = 0
    n_groups_completed: int = 0
    n_checkpoints: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def ok(self) -> bool:
        return not self.dead_letters

    @property
    def n_dead_letters(self) -> int:
        return len(self.dead_letters)

    @property
    def n_visibilities_lost(self) -> int:
        """Visibilities excluded from the output by quarantined groups."""
        return sum(d.n_visibilities for d in self.dead_letters)

    def excluded_items(self) -> tuple[tuple[int, int], ...]:
        """Plan-item ranges of every quarantined work group (deduplicated:
        a group dead-lettered at one stage appears once)."""
        return tuple(sorted({(d.start, d.stop) for d in self.dead_letters}))

    def adjusted_weight_sum(self, weight_sum: float) -> float:
        """Flag accounting: ``weight_sum`` minus the quarantined
        visibilities, floored at zero (natural-weighting count semantics)."""
        return max(weight_sum - float(self.n_visibilities_lost), 0.0)

    def record_dead_letter(self, letter: DeadLetter) -> None:
        with self._lock:
            self.dead_letters.append(letter)

    def record_retry(self) -> None:
        with self._lock:
            self.n_retries += 1

    def summary(self) -> str:
        """One-paragraph human-readable digest of the run's faults."""
        lines = [
            f"fault report: {self.n_groups_completed}/{self.n_groups} work "
            f"groups completed, {self.n_retries} retries, "
            f"{self.n_dead_letters} dead-lettered "
            f"({self.n_visibilities_lost} visibilities excluded)"
        ]
        for d in self.dead_letters:
            lines.append(
                f"  dead letter: stage {d.stage} group {d.group} "
                f"items [{d.start}, {d.stop}) after {d.attempts} "
                f"attempt(s): {d.error}"
            )
        return "\n".join(lines)


def group_visibility_count(plan: Any, start: int, stop: int) -> int:
    """Covered (time x channel) visibilities of plan items [start, stop)."""
    rows = plan.items[start:stop]
    return int(
        (
            (rows["time_end"] - rows["time_start"])
            * (rows["channel_end"] - rows["channel_start"])
        ).sum()
    )


class WorkGroupRunner:
    """Runs per-work-group stage calls under retry + quarantine semantics.

    One runner is shared by all stages (and all worker threads) of a single
    grid/degrid call; its :class:`FaultReport` accumulates the outcome.

    Parameters
    ----------
    policy:
        The retry budget/backoff.  ``max_retries=0`` still quarantines on
        the first failure — a runner is only constructed when the caller
        opted into fault tolerance.
    faults:
        Optional deterministic injection plan (tests, benchmarks).
    telemetry:
        Optional recorder for ``retries``/``dead_letters`` counters and
        per-retry backoff spans.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        faults: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
        report: FaultReport | None = None,
    ) -> None:
        self.policy = policy
        self.faults = faults
        self.telemetry = telemetry
        self.report = report if report is not None else FaultReport()

    def run(
        self,
        stage: str,
        group: int,
        fn: Callable[[], Any],
        *,
        start: int,
        stop: int,
        n_visibilities: int,
    ) -> Any:
        """Execute ``fn`` with retries; quarantine on budget exhaustion.

        Returns ``fn()``'s result, or a :class:`Quarantined` sentinel after
        ``1 + max_retries`` failed attempts.  Only ``Exception`` subclasses
        are handled — ``KeyboardInterrupt`` and
        :class:`~repro.runtime.faults.InjectedCrash` always propagate.
        """
        budget = 1 + self.policy.max_retries
        attempt = 0
        while True:
            attempt += 1
            try:
                if self.faults is not None:
                    self.faults.fire(stage, group)
                result = fn()
                if self.faults is not None:
                    result = self.faults.screen(stage, group, result)
                return result
            except Exception as exc:  # noqa: BLE001 — bounded-budget retry
                if attempt >= budget:
                    return self._quarantine(
                        stage, group, start, stop, n_visibilities, attempt, exc
                    )
                self._retry(stage, group, attempt)

    def fail_external(
        self,
        stage: str,
        group: int,
        *,
        start: int,
        stop: int,
        n_visibilities: int,
        attempts: int,
        error: BaseException,
    ) -> Quarantined | None:
        """Account a failed attempt observed from *outside* the stage call.

        The process-sharded executor uses this for worker-process deaths: the
        exception (a SIGKILL, an OOM kill, a segfault) never crosses the
        process boundary, so there is nothing for :meth:`run` to catch — the
        parent observes the exit code and charges the active work group one
        attempt.  Within budget the failure is recorded as a retry (the
        respawn latency *is* the backoff, so none is slept here) and ``None``
        is returned — the caller respawns the shard.  Once ``attempts``
        exhausts ``1 + max_retries`` the group is quarantined exactly like an
        in-process failure and the :class:`Quarantined` sentinel is returned.
        """
        if attempts >= 1 + self.policy.max_retries:
            return self._quarantine(
                stage, group, start, stop, n_visibilities, attempts, error
            )
        self.report.record_retry()
        if self.telemetry is not None:
            self.telemetry.add_counter("retries", 1)
        return None

    # ------------------------------------------------------------- internal

    def _retry(self, stage: str, group: int, attempt: int) -> None:
        self.report.record_retry()
        if self.telemetry is not None:
            self.telemetry.add_counter("retries", 1)
        pause = self.policy.backoff(attempt)
        t0 = monotonic()
        if pause > 0:
            time.sleep(pause)
        if self.telemetry is not None:
            self.telemetry.record_span(
                f"{stage}:retry", group, t0, monotonic(),
                worker=f"{stage}:retry",
            )

    def _quarantine(
        self,
        stage: str,
        group: int,
        start: int,
        stop: int,
        n_visibilities: int,
        attempts: int,
        exc: Exception,
    ) -> Quarantined:
        self.report.record_dead_letter(
            DeadLetter(
                stage=stage, group=group, start=start, stop=stop,
                attempts=attempts, error=repr(exc),
                n_visibilities=n_visibilities,
            )
        )
        if self.telemetry is not None:
            self.telemetry.add_counter("dead_letters", 1)
        return Quarantined(group=group, start=start, stop=stop)
