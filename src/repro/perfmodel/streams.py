"""Triple-buffering stream scheduler (paper Fig 7, Section V-C-a).

The GPU implementation hides PCIe transfers behind kernel execution using
three host threads, three device buffer sets and three CUDA streams: one for
host-to-device copies, one for kernels, one for device-to-host copies.  This
module reproduces that schedule as a small discrete-event simulation:

* the HtoD stream executes all input copies in order, one at a time;
* the compute stream executes each job's kernel after its input copy;
* the DtoH stream copies each job's results out after its kernel;
* a job may start its input copy only when its buffer set is free — i.e.
  after job ``j - n_buffers`` finished copying out (the "dashed" deferred
  copies of Fig 7).

With enough buffers the makespan approaches ``max(sum_h, sum_c, sum_d)``
(perfect overlap); with one buffer it degenerates to the serial sum — the
ablation the Fig 7 benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StreamEvent:
    """One operation on one stream."""

    job: int
    stage: str  # "htod" | "compute" | "dtoh"
    start: float
    end: float


@dataclass(frozen=True)
class StreamSchedule:
    """Complete schedule of a job list over the three streams."""

    events: tuple[StreamEvent, ...]
    makespan: float
    n_buffers: int

    def stream(self, stage: str) -> list[StreamEvent]:
        return [e for e in self.events if e.stage == stage]

    def busy_time(self, stage: str) -> float:
        return sum(e.end - e.start for e in self.stream(stage))

    def compute_utilisation(self) -> float:
        """Fraction of the makespan the compute stream is busy — near 1.0
        means transfers are fully hidden (the point of Fig 7)."""
        return self.busy_time("compute") / self.makespan if self.makespan else 0.0


def schedule_buffers(
    jobs: list[tuple[float, float, float]], n_buffers: int = 3
) -> StreamSchedule:
    """Schedule jobs of (htod, compute, dtoh) durations over three streams.

    Parameters
    ----------
    jobs:
        Per work group: input-copy, kernel and output-copy durations in
        seconds.
    n_buffers:
        Device buffer sets (the paper uses 3 = triple buffering).
    """
    if n_buffers <= 0:
        raise ValueError("n_buffers must be positive")
    for j, (h, c, d) in enumerate(jobs):
        if h < 0 or c < 0 or d < 0:
            raise ValueError(f"job {j} has negative duration")

    events: list[StreamEvent] = []
    htod_free = 0.0
    compute_free = 0.0
    dtoh_free = 0.0
    dtoh_end: list[float] = []  # completion time of each job's output copy

    for j, (h, c, d) in enumerate(jobs):
        buffer_ready = dtoh_end[j - n_buffers] if j >= n_buffers else 0.0
        h_start = max(htod_free, buffer_ready)
        h_end = h_start + h
        htod_free = h_end
        events.append(StreamEvent(j, "htod", h_start, h_end))

        c_start = max(compute_free, h_end)
        c_end = c_start + c
        compute_free = c_end
        events.append(StreamEvent(j, "compute", c_start, c_end))

        d_start = max(dtoh_free, c_end)
        d_end = d_start + d
        dtoh_free = d_end
        dtoh_end.append(d_end)
        events.append(StreamEvent(j, "dtoh", d_start, d_end))

    makespan = max((e.end for e in events), default=0.0)
    return StreamSchedule(events=tuple(events), makespan=makespan, n_buffers=n_buffers)


def serial_makespan(jobs: list[tuple[float, float, float]]) -> float:
    """No overlap at all: the sum of every stage of every job."""
    return sum(h + c + d for h, c, d in jobs)


def transfer_times(
    arch_pcie_gbs: float, bytes_in: float, bytes_out: float, compute_seconds: float
) -> tuple[float, float, float]:
    """(htod, compute, dtoh) durations for one work group on a GPU."""
    if arch_pcie_gbs <= 0:
        return (0.0, compute_seconds, 0.0)
    bw = arch_pcie_gbs * 1e9
    return (bytes_in / bw, compute_seconds, bytes_out / bw)
