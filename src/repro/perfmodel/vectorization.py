"""Vector-width alignment effects (paper Section V-B).

The CPU gridder vectorises the channel loop: "the vectorization works best
when the number of channels is a multiple of the SIMD vector width, as
otherwise the remainder(C_B, SIMD_WIDTH) channels will be processed using
masked vector instructions.  This implies that wider vectors will not
necessarily result in higher performance."  These helpers quantify that
effect for the ablation benchmark.
"""

from __future__ import annotations

import numpy as np


def simd_channel_efficiency(n_channels: int, simd_width: int) -> float:
    """Fraction of vector lanes doing useful work in the channel loop.

    A channel count of C on W-wide vectors issues ``ceil(C / W)`` vector
    iterations of which the last is masked: efficiency = C / (W * ceil(C/W)).
    """
    if n_channels <= 0 or simd_width <= 0:
        raise ValueError("n_channels and simd_width must be positive")
    iterations = -(-n_channels // simd_width)
    return n_channels / (simd_width * iterations)


def effective_peak_ops(peak_ops: float, n_channels: int, simd_width: int) -> float:
    """Peak op rate scaled by the channel-loop lane efficiency."""
    return peak_ops * simd_channel_efficiency(n_channels, simd_width)


def best_simd_width(n_channels: int, candidate_widths=(4, 8, 16)) -> int:
    """The vector width with the highest *lane efficiency* for C channels.

    This is the paper's observation that "wider vectors will not necessarily
    result in higher performance": a width that divides C keeps every lane
    busy, while a wider one burns issue slots on masked lanes.  Ties go to
    the wider vector (fewer iterations at equal efficiency).
    """
    if n_channels <= 0:
        raise ValueError("n_channels must be positive")
    return max(
        candidate_widths,
        key=lambda width: (simd_channel_efficiency(n_channels, width), width),
    )


def sweep_channel_efficiency(
    simd_width: int, channel_counts=None
) -> tuple[np.ndarray, np.ndarray]:
    """(channel counts, lane efficiency) series for one vector width."""
    if channel_counts is None:
        channel_counts = np.arange(1, 33)
    channel_counts = np.asarray(channel_counts, dtype=np.int64)
    eff = np.array(
        [simd_channel_efficiency(int(c), simd_width) for c in channel_counts]
    )
    return channel_counts, eff
