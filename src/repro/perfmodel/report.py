"""One-shot evaluation report: the paper's Section VI as formatted text.

:func:`evaluation_report` runs the whole performance model over one
execution plan and renders every figure's series — Table I, the rho sweep,
both rooflines, runtime/throughput/energy and the WPG comparison — as a
single report string.  The CLI's ``perfmodel`` command prints a digest; this
renders the complete set (used by the ``performance_model`` example and by
anyone wanting the paper's evaluation for *their own* observation).
"""

from __future__ import annotations

import io

import numpy as np

from repro.core.plan import Plan
from repro.perfmodel.architectures import ALL_ARCHITECTURES, PASCAL, table1_rows
from repro.perfmodel.energy import (
    energy_efficiency_gflops_per_watt,
    imaging_cycle_energy,
)
from repro.perfmodel.opcount import (
    degridder_counts,
    gridder_counts,
    idg_synthetic_counts,
    wprojection_counts,
)
from repro.perfmodel.roofline import attainable_ops, device_roofline_point, shared_roofline_point
from repro.perfmodel.runtime import imaging_cycle_runtime, throughput_mvis
from repro.perfmodel.sincos import sweep_rho


def _table(out: io.StringIO, title: str, headers: list[str], rows: list[tuple]) -> None:
    out.write(f"\n## {title}\n")
    widths = [max(len(h), 11) for h in headers]
    out.write("  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n")
    for row in rows:
        cells = []
        for value, w in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:.4g}".rjust(w))
            else:
                cells.append(str(value).rjust(w))
        out.write("  " + "  ".join(cells) + "\n")


def evaluation_report(plan: Plan, with_aterms: bool = False) -> str:
    """Render the full Section VI evaluation for one execution plan."""
    out = io.StringIO()
    stats = plan.statistics
    out.write("# IDG performance-model evaluation\n")
    out.write(
        f"workload: {stats.n_visibilities_gridded:,} visibilities on "
        f"{stats.n_subgrids:,} subgrids of {plan.subgrid_size}^2 pixels "
        f"({stats.mean_visibilities_per_subgrid:.0f} vis/subgrid), "
        f"{plan.gridspec.grid_size}^2 grid\n"
    )

    # Table I
    _table(
        out, "Table I: architectures",
        ["model", "type", "clock GHz", "peak TFlops", "mem GB/s", "TDP W"],
        [(r["model"], r["type"], r["clock (GHz)"], r["peak (TFlops)"],
          r["mem bw (GB/s)"], r["TDP (W)"]) for r in table1_rows()],
    )

    gc = gridder_counts(plan, with_aterms=with_aterms)
    dc = degridder_counts(plan, with_aterms=with_aterms)

    # Fig 11 / 13
    rows = []
    for arch in ALL_ARCHITECTURES:
        for counts in (gc, dc):
            pt = device_roofline_point(arch, counts)
            spt = shared_roofline_point(arch, counts)
            rows.append(
                (arch.name, counts.name, pt.intensity, spt.intensity,
                 pt.performance_ops / 1e12,
                 100 * pt.performance_ops / arch.peak_ops, pt.bound)
            )
    _table(
        out, "Figs 11/13: rooflines (op = +,-,*,sin,cos)",
        ["arch", "kernel", "ops/dev-byte", "ops/shm-byte", "TOps/s",
         "% peak", "bound"],
        rows,
    )

    # Fig 12
    rhos = np.array([0.0, 2.0, 8.0, 17.0, 32.0, 128.0])
    _table(
        out, "Fig 12: throughput vs rho (fraction of peak)",
        ["rho"] + [a.name for a in ALL_ARCHITECTURES],
        [
            (float(r),) + tuple(
                float(sweep_rho(a, np.array([r]))[1][0] / a.peak_ops)
                for a in ALL_ARCHITECTURES
            )
            for r in rhos
        ],
    )

    # Figs 9 / 10 / 14 / 15
    rows = []
    for arch in ALL_ARCHITECTURES:
        cycle = imaging_cycle_runtime(arch, plan, with_aterms=with_aterms)
        energy = imaging_cycle_energy(arch, plan, with_aterms=with_aterms)
        rows.append(
            (
                arch.name,
                cycle.total_seconds,
                100 * cycle.gridding_degridding_fraction(),
                throughput_mvis(arch, gc),
                throughput_mvis(arch, dc),
                energy.total_joules,
                energy_efficiency_gflops_per_watt(arch, gc),
                energy_efficiency_gflops_per_watt(arch, dc),
            )
        )
    _table(
        out, "Figs 9/10/14/15: cycle runtime, throughput, energy",
        ["arch", "cycle s", "(de)grid %", "grid MVis/s", "degrid MVis/s",
         "cycle J", "grid GF/W", "degrid GF/W"],
        rows,
    )

    # Fig 16
    n_vis = gc.visibilities
    occupancy = n_vis / max(gc.n_subgrids, 1)
    rows = []
    for support in (8, 16, 24, 32, 64):
        wpg = throughput_mvis(PASCAL, wprojection_counts(n_vis, support))
        matched = throughput_mvis(
            PASCAL,
            idg_synthetic_counts(n_vis, max(24, support),
                                 visibilities_per_subgrid=occupancy),
        )
        rows.append((support, wpg, throughput_mvis(PASCAL, gc), matched))
    _table(
        out, "Fig 16: IDG vs W-projection on PASCAL (MVis/s)",
        ["N_W", "WPG", "IDG (plan)", "IDG (N=max(24,N_W))"],
        rows,
    )

    return out.getvalue()
