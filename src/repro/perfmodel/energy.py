"""Energy model (Figs 14 and 15).

Energy is power x time: each kernel's predicted runtime (Fig 9 model) times
the architecture's measured-equivalent compute power.  For GPUs the paper
adds the host's package+DRAM draw (LIKWID) on top of the board power
(PowerSensor); the model mirrors that split so the Fig 14 stacked bars have
the same composition.

Efficiency (Fig 15) is *flops* per watt — the paper reports GFlops/W using
the classic flop metric (sincos excluded), which is why PASCAL's gridder
lands near 32 GFlops/W rather than its op rate divided by power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import Plan
from repro.perfmodel.architectures import Architecture
from repro.perfmodel.opcount import KernelCounts
from repro.perfmodel.runtime import CycleRuntime, imaging_cycle_runtime, kernel_runtime


@dataclass(frozen=True)
class KernelEnergy:
    """Energy of one kernel on one architecture."""

    kernel: str
    architecture: str
    joules_device: float
    joules_host: float
    seconds: float

    @property
    def joules_total(self) -> float:
        return self.joules_device + self.joules_host


@dataclass(frozen=True)
class CycleEnergy:
    """Energy distribution of one imaging cycle (Fig 14)."""

    architecture: str
    kernels: tuple[KernelEnergy, ...]

    @property
    def total_joules(self) -> float:
        return sum(k.joules_total for k in self.kernels)

    @property
    def host_joules(self) -> float:
        return sum(k.joules_host for k in self.kernels)

    def fraction(self, kernel: str) -> float:
        e = sum(k.joules_total for k in self.kernels if k.kernel == kernel)
        return e / self.total_joules if self.total_joules else 0.0


def kernel_energy(arch: Architecture, counts: KernelCounts) -> KernelEnergy:
    """Energy of one kernel: runtime x (device power [+ host power])."""
    runtime = kernel_runtime(arch, counts)
    return KernelEnergy(
        kernel=counts.name,
        architecture=arch.name,
        joules_device=runtime.seconds * arch.compute_power_w,
        joules_host=runtime.seconds * arch.host_power_w,
        seconds=runtime.seconds,
    )


def imaging_cycle_energy(
    arch: Architecture, plan: Plan, with_aterms: bool = False
) -> CycleEnergy:
    """Fig 14: per-kernel energy of one full imaging cycle."""
    from repro.perfmodel.opcount import (
        adder_counts,
        degridder_counts,
        gridder_counts,
        splitter_counts,
        subgrid_fft_counts,
    )

    counts = (
        gridder_counts(plan, with_aterms=with_aterms),
        subgrid_fft_counts(plan),
        adder_counts(plan),
        splitter_counts(plan),
        subgrid_fft_counts(plan),
        degridder_counts(plan, with_aterms=with_aterms),
    )
    return CycleEnergy(
        architecture=arch.name,
        kernels=tuple(kernel_energy(arch, c) for c in counts),
    )


def energy_efficiency_gflops_per_watt(
    arch: Architecture, counts: KernelCounts, include_host: bool = False
) -> float:
    """Fig 15: kernel flop rate divided by power draw.

    ``include_host=False`` matches the paper's per-kernel efficiency bars
    (device power only); set True for a whole-system figure.
    """
    runtime = kernel_runtime(arch, counts)
    if runtime.seconds <= 0:
        return 0.0
    power = arch.compute_power_w + (arch.host_power_w if include_host else 0.0)
    return counts.flops / runtime.seconds / power / 1e9
