"""End-to-end pipeline predictions: transfers, overlap and core scaling.

Combines the per-kernel runtime model with the stream scheduler to predict
what the paper's Section V implementations actually achieve end to end:

* :func:`gpu_cycle_with_transfers` — the full GPU imaging cycle including
  PCIe traffic, scheduled with n-fold buffering (Fig 7's triple buffering
  hides the copies; 1 buffer exposes them);
* :func:`cpu_core_scaling` — the CPU gridder under OpenMP-style work-item
  parallelism: embarrassingly parallel kernels scaled by Amdahl's law with
  a small serial fraction (plan handling + the adder's merge).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import Plan
from repro.perfmodel.architectures import Architecture
from repro.perfmodel.opcount import (
    KernelCounts,
    adder_counts,
    degridder_counts,
    gridder_counts,
    splitter_counts,
    subgrid_fft_counts,
)
from repro.perfmodel.runtime import imaging_cycle_runtime, kernel_runtime
from repro.perfmodel.streams import StreamSchedule, schedule_buffers, serial_makespan


@dataclass(frozen=True)
class GpuCyclePrediction:
    """End-to-end GPU cycle with transfers.

    Attributes
    ----------
    compute_seconds:
        Sum of kernel times (the Fig 9 quantity).
    transfer_seconds:
        Total PCIe time (HtoD + DtoH).
    overlapped_seconds:
        Makespan with n-buffer overlap.
    serial_seconds:
        Makespan with no overlap at all.
    schedule:
        The underlying stream schedule.
    """

    compute_seconds: float
    transfer_seconds: float
    overlapped_seconds: float
    serial_seconds: float
    schedule: StreamSchedule

    @property
    def overlap_speedup(self) -> float:
        return self.serial_seconds / self.overlapped_seconds

    @property
    def transfer_hidden_fraction(self) -> float:
        """Fraction of transfer time hidden behind compute."""
        if self.transfer_seconds == 0:
            return 1.0
        exposed = max(self.overlapped_seconds - self.compute_seconds, 0.0)
        return 1.0 - exposed / self.transfer_seconds


def _cycle_bytes(plan: Plan) -> tuple[float, float]:
    """(bytes in, bytes out) of one imaging cycle's GPU work.

    In: visibilities + uvw for gridding and degridding inputs; out: the
    predicted visibilities and the subgrids handed to the host-side adder
    (the paper's option 2 for large grids keeps the master grid on the
    host).
    """
    gc = gridder_counts(plan)
    n = plan.subgrid_size
    vis_bytes = gc.visibilities * 32.0
    uvw_bytes = gc.visibilities * 12.0 / max(plan.n_channels, 1)
    subgrid_bytes = plan.n_subgrids * n * n * 32.0
    bytes_in = vis_bytes + uvw_bytes + subgrid_bytes  # grid+degrid inputs
    bytes_out = vis_bytes + subgrid_bytes
    return bytes_in, bytes_out


def gpu_cycle_with_transfers(
    arch: Architecture,
    plan: Plan,
    n_work_groups: int = 16,
    n_buffers: int = 3,
) -> GpuCyclePrediction:
    """Predict one imaging cycle on a GPU including PCIe transfers."""
    if not arch.is_gpu:
        raise ValueError(f"{arch.name} is not a GPU")
    if n_work_groups <= 0:
        raise ValueError("n_work_groups must be positive")
    cycle = imaging_cycle_runtime(arch, plan)
    compute = cycle.total_seconds
    bytes_in, bytes_out = _cycle_bytes(plan)
    bw = arch.pcie_bandwidth_gbs * 1e9
    t_in, t_out = bytes_in / bw, bytes_out / bw
    jobs = [
        (t_in / n_work_groups, compute / n_work_groups, t_out / n_work_groups)
    ] * n_work_groups
    schedule = schedule_buffers(jobs, n_buffers=n_buffers)
    return GpuCyclePrediction(
        compute_seconds=compute,
        transfer_seconds=t_in + t_out,
        overlapped_seconds=schedule.makespan,
        serial_seconds=serial_makespan(jobs),
        schedule=schedule,
    )


@dataclass(frozen=True)
class CoreScalingPoint:
    """Predicted CPU gridder throughput at a core count."""

    n_cores: int
    speedup: float
    efficiency: float
    seconds: float


def cpu_core_scaling(
    arch: Architecture,
    plan: Plan,
    core_counts=(1, 2, 4, 8, 14, 28),
    serial_fraction: float = 0.02,
) -> list[CoreScalingPoint]:
    """Amdahl scaling of the CPU gridder over work items (Section V-B-a).

    The gridder distributes work items over logical cores with OpenMP;
    the serial remainder (plan handling, the adder merge, load imbalance at
    the tail) is modelled as ``serial_fraction`` of single-core time.
    ``arch.peak_ops`` already describes the *full* chip, so single-core time
    is scaled up by the total core count first.
    """
    if arch.is_gpu:
        raise ValueError(f"{arch.name} is not a CPU")
    if not (0 <= serial_fraction < 1):
        raise ValueError("serial_fraction must be in [0, 1)")
    total_cores = max(core_counts)
    counts = gridder_counts(plan)
    full_chip_seconds = kernel_runtime(arch, counts).seconds
    single_core_seconds = full_chip_seconds * total_cores
    out = []
    for cores in core_counts:
        if cores <= 0:
            raise ValueError("core counts must be positive")
        seconds = single_core_seconds * (
            serial_fraction + (1.0 - serial_fraction) / cores
        )
        speedup = single_core_seconds / seconds
        out.append(
            CoreScalingPoint(
                n_cores=cores,
                speedup=speedup,
                efficiency=speedup / cores,
                seconds=seconds,
            )
        )
    return out
