"""Per-kernel runtime and throughput prediction (Figs 9 and 10).

A kernel's runtime is its measured operation count divided by the attainable
rate from the modified roofline (:func:`repro.perfmodel.roofline
.attainable_ops`); pure data movers (adder, splitter) are bandwidth-bound.
Summing the kernels of one imaging cycle — gridding (gridder, subgrid FFT,
adder) plus degridding (splitter, subgrid FFT, degridder) — reproduces the
Fig 9 runtime distribution; dividing visibility counts by the gridder and
degridder times gives the Fig 10 MVis/s throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import Plan
from repro.perfmodel.architectures import Architecture
from repro.perfmodel.opcount import (
    KernelCounts,
    adder_counts,
    degridder_counts,
    gridder_counts,
    splitter_counts,
    subgrid_fft_counts,
)
from repro.perfmodel.roofline import attainable_ops


@dataclass(frozen=True)
class KernelRuntime:
    """Predicted execution of one kernel on one architecture."""

    kernel: str
    architecture: str
    seconds: float
    ops: float
    bound: str

    @property
    def ops_per_second(self) -> float:
        return self.ops / self.seconds if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class CycleRuntime:
    """One full imaging cycle (Fig 9): gridding + degridding kernels."""

    architecture: str
    kernels: tuple[KernelRuntime, ...]

    @property
    def total_seconds(self) -> float:
        return sum(k.seconds for k in self.kernels)

    def fraction(self, kernel: str) -> float:
        t = sum(k.seconds for k in self.kernels if k.kernel == kernel)
        return t / self.total_seconds if self.total_seconds else 0.0

    def gridding_degridding_fraction(self) -> float:
        """The paper's Section VI-B claim: > 93% of runtime in these two."""
        return self.fraction("gridder") + self.fraction("degridder")


def kernel_runtime(arch: Architecture, counts: KernelCounts) -> KernelRuntime:
    """Runtime of one kernel: ops / attainable rate (bandwidth time for pure
    data movers with no arithmetic)."""
    if counts.ops > 0:
        rate, bound = attainable_ops(arch, counts)
        seconds = counts.ops / rate
    else:
        seconds = counts.bytes_device / (arch.mem_bandwidth_gbs * 1e9)
        bound = "memory"
    return KernelRuntime(
        kernel=counts.name, architecture=arch.name, seconds=seconds,
        ops=counts.ops, bound=bound,
    )


def imaging_cycle_runtime(
    arch: Architecture, plan: Plan, with_aterms: bool = False
) -> CycleRuntime:
    """Predicted runtime distribution of one imaging cycle (Fig 9).

    The cycle comprises imaging (gridder + subgrid FFT + adder) and
    prediction (splitter + subgrid FFT + degridder) over the same plan, as
    in Fig 2/Fig 4.
    """
    kernels = (
        kernel_runtime(arch, gridder_counts(plan, with_aterms=with_aterms)),
        kernel_runtime(arch, subgrid_fft_counts(plan)),
        kernel_runtime(arch, adder_counts(plan)),
        kernel_runtime(arch, splitter_counts(plan)),
        kernel_runtime(arch, subgrid_fft_counts(plan)),
        kernel_runtime(arch, degridder_counts(plan, with_aterms=with_aterms)),
    )
    return CycleRuntime(architecture=arch.name, kernels=kernels)


def throughput_mvis(arch: Architecture, counts: KernelCounts) -> float:
    """Visibility throughput in MVis/s (Fig 10 / Fig 16 y-axis)."""
    runtime = kernel_runtime(arch, counts)
    if runtime.seconds <= 0:
        return 0.0
    return counts.visibilities / runtime.seconds / 1e6
