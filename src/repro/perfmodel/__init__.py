"""Hardware performance & energy model (the paper's evaluation substrate).

We have no Haswell-EP node, Fury X or GTX 1080 — so, per the substitution
policy in DESIGN.md, this package reduces each platform to exactly the
parameters the paper's own analysis uses (Table I peak rates and bandwidths,
the FMA/sine-cosine execution model of Fig 12, shared-memory bandwidth of
Fig 13, TDP-level powers) and drives those parameters with *exact operation
and byte counts measured from real execution plans* produced by this
package's IDG implementation.  The figures' shapes — who wins, by what
factor, where the ceilings sit — follow from the model; EXPERIMENTS.md
records predicted-vs-paper numbers for each figure.

Modules
-------
``architectures`` — Table I database + calibrated sine/cosine cost models.
``opcount``       — op/byte counting for every kernel, from a Plan.
``sincos``        — throughput vs FMA:sincos mix ρ (Fig 12).
``roofline``      — device- and shared-memory rooflines (Figs 11, 13).
``runtime``       — per-kernel runtime & throughput prediction (Figs 9, 10).
``energy``        — energy distribution & efficiency (Figs 14, 15).
``streams``       — triple-buffering stream scheduler (Fig 7).
"""

from repro.perfmodel.architectures import (
    ALL_ARCHITECTURES,
    FIJI,
    HASWELL,
    PASCAL,
    Architecture,
)
from repro.perfmodel.opcount import (
    KernelCounts,
    adder_counts,
    degridder_counts,
    gridder_counts,
    splitter_counts,
    idg_synthetic_counts,
    subgrid_fft_counts,
    wprojection_counts,
)
from repro.perfmodel.sincos import mixed_throughput_ops, sincos_bound_ops, sweep_rho
from repro.perfmodel.roofline import (
    RooflinePoint,
    attainable_ops,
    device_roofline_point,
    roofline_ceiling,
    shared_roofline_point,
)
from repro.perfmodel.runtime import (
    CycleRuntime,
    KernelRuntime,
    imaging_cycle_runtime,
    kernel_runtime,
    throughput_mvis,
)
from repro.perfmodel.energy import (
    CycleEnergy,
    energy_efficiency_gflops_per_watt,
    imaging_cycle_energy,
)
from repro.perfmodel.pipeline_model import (
    CoreScalingPoint,
    GpuCyclePrediction,
    cpu_core_scaling,
    gpu_cycle_with_transfers,
)
from repro.perfmodel.vectorization import (
    best_simd_width,
    effective_peak_ops,
    simd_channel_efficiency,
    sweep_channel_efficiency,
)
from repro.perfmodel.report import evaluation_report
from repro.perfmodel.streams import (
    StreamEvent,
    StreamSchedule,
    schedule_buffers,
    serial_makespan,
)

__all__ = [
    "ALL_ARCHITECTURES",
    "FIJI",
    "HASWELL",
    "PASCAL",
    "Architecture",
    "KernelCounts",
    "adder_counts",
    "degridder_counts",
    "gridder_counts",
    "splitter_counts",
    "subgrid_fft_counts",
    "wprojection_counts",
    "mixed_throughput_ops",
    "sincos_bound_ops",
    "sweep_rho",
    "RooflinePoint",
    "attainable_ops",
    "device_roofline_point",
    "roofline_ceiling",
    "shared_roofline_point",
    "CycleRuntime",
    "KernelRuntime",
    "imaging_cycle_runtime",
    "kernel_runtime",
    "throughput_mvis",
    "CycleEnergy",
    "energy_efficiency_gflops_per_watt",
    "imaging_cycle_energy",
    "StreamEvent",
    "StreamSchedule",
    "schedule_buffers",
    "serial_makespan",
    "CoreScalingPoint",
    "GpuCyclePrediction",
    "cpu_core_scaling",
    "gpu_cycle_with_transfers",
    "best_simd_width",
    "effective_peak_ops",
    "simd_channel_efficiency",
    "sweep_channel_efficiency",
    "idg_synthetic_counts",
    "evaluation_report",
]
