"""Modified roofline model (Figs 11 and 13).

The classic roofline bounds performance by ``min(peak, bandwidth *
operational_intensity)``.  The paper modifies it twice:

1. *operations* include sine/cosine, and a new ceiling — the rho = 17 mix
   bound of :mod:`repro.perfmodel.sincos` — replaces the raw FMA peak for
   architectures whose transcendental throughput is limited (the dashed
   lines of Fig 11);
2. a second roofline with operational intensity measured against *shared
   memory* traffic (Fig 13) explains why even PASCAL stays below its
   sincos-adjusted ceiling.

``attainable_ops`` combines all four ceilings; it is the performance
predictor the runtime model (Fig 9/10) is built on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.architectures import Architecture
from repro.perfmodel.opcount import KernelCounts
from repro.perfmodel.sincos import mixed_throughput_ops


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position in a roofline plot.

    Attributes
    ----------
    kernel, architecture:
        Labels.
    intensity:
        Ops per byte (device or shared, depending on the plot).
    performance_ops:
        Predicted attainable op/s at that intensity.
    ceiling_ops:
        The binding ceiling at that intensity (for drawing the roof).
    bound:
        Which ceiling binds: ``"memory"``, ``"sincos"`` or ``"peak"``
        (``"shared"`` in the shared-memory plot).
    """

    kernel: str
    architecture: str
    intensity: float
    performance_ops: float
    ceiling_ops: float
    bound: str


def roofline_ceiling(arch: Architecture, intensity: float) -> float:
    """Classic device-memory roofline: ``min(peak, bw * intensity)``."""
    if intensity < 0:
        raise ValueError("intensity must be >= 0")
    return min(arch.peak_ops, arch.mem_bandwidth_gbs * 1e9 * intensity)


def attainable_ops(arch: Architecture, counts: KernelCounts) -> tuple[float, str]:
    """Predicted op/s for a kernel on an architecture, with the binding bound.

    Applies, in order: device-memory bandwidth, shared-memory bandwidth
    (GPU kernels with shared traffic), the sincos mix ceiling at the
    kernel's actual rho, and the FMA peak.
    """
    candidates: list[tuple[float, str]] = [(arch.peak_ops, "peak")]
    if counts.bytes_device > 0:
        candidates.append(
            (arch.mem_bandwidth_gbs * 1e9 * counts.operational_intensity, "memory")
        )
    if counts.bytes_shared > 0 and arch.is_gpu:
        candidates.append(
            (arch.shared_bandwidth_tbs * 1e12 * counts.shared_intensity, "shared")
        )
    if counts.sincos_evals > 0:
        candidates.append((mixed_throughput_ops(arch, counts.rho), "sincos"))
    perf, bound = min(candidates, key=lambda c: c[0])
    return perf, bound


def device_roofline_point(arch: Architecture, counts: KernelCounts) -> RooflinePoint:
    """The kernel's point in the Fig 11 (device memory) roofline."""
    perf, bound = attainable_ops(arch, counts)
    return RooflinePoint(
        kernel=counts.name,
        architecture=arch.name,
        intensity=counts.operational_intensity,
        performance_ops=perf,
        ceiling_ops=roofline_ceiling(arch, counts.operational_intensity),
        bound=bound,
    )


def shared_roofline_point(arch: Architecture, counts: KernelCounts) -> RooflinePoint:
    """The kernel's point in the Fig 13 (shared memory) roofline."""
    perf, bound = attainable_ops(arch, counts)
    intensity = counts.shared_intensity
    ceiling = min(arch.peak_ops, arch.shared_bandwidth_tbs * 1e12 * intensity) if (
        intensity != float("inf")
    ) else arch.peak_ops
    return RooflinePoint(
        kernel=counts.name,
        architecture=arch.name,
        intensity=intensity,
        performance_ops=perf,
        ceiling_ops=ceiling,
        bound=bound,
    )
