"""Throughput model for mixed FMA / sine-cosine instruction streams (Fig 12).

The paper benchmarks the achievable operation rate for varying

    rho = (number of FMAs) / (number of sincos evaluations)

and uses the rho = 17 point (the gridder/degridder mix: 17 real FMAs per
sine/cosine pair, Algorithms 1-2) as the realistic performance ceiling for
HASWELL and FIJI (the dashed lines in Fig 11).

Model.  One "work quantum" contains ``rho`` FMA instructions and one sincos
evaluation, i.e. ``2 * rho + 2`` ops (each FMA is 2 ops; sin and cos are one
op each).

* Serial architectures (HASWELL, FIJI): the sincos occupies the FMA pipes
  for ``sincos_slots`` instruction slots, so the quantum takes
  ``(rho + sincos_slots) / fma_rate`` seconds.
* Parallel architectures (PASCAL): the sincos runs on the SFU queue
  (``1 / (sfu_ratio * fma_rate)`` seconds per evaluation) while the FMA
  queue needs ``(rho + sincos_slots issue overhead) / fma_rate``; the
  quantum takes the max of the two.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.architectures import Architecture


def mixed_throughput_ops(arch: Architecture, rho: float) -> float:
    """Achievable op/s for an FMA:sincos mix of ``rho`` (Fig 12 y-axis).

    ``rho = inf`` (or a very large value) approaches the FMA peak;
    ``rho = 0`` is pure sincos evaluation.
    """
    if rho < 0:
        raise ValueError("rho must be >= 0")
    fma_rate = arch.fma_instruction_rate
    ops_per_quantum = 2.0 * rho + 2.0
    if arch.sincos_parallel:
        t_fma_queue = (rho + arch.sincos_slots) / fma_rate
        t_sfu_queue = 1.0 / (arch.sfu_ratio * fma_rate)
        t = max(t_fma_queue, t_sfu_queue)
    else:
        t = (rho + arch.sincos_slots) / fma_rate
    return min(ops_per_quantum / t, arch.peak_ops)


def sincos_bound_ops(arch: Architecture, rho: float = 17.0) -> float:
    """The dashed-line ceiling of Fig 11: :func:`mixed_throughput_ops` at the
    kernels' actual mix (rho = 17)."""
    return mixed_throughput_ops(arch, rho)


def sweep_rho(arch: Architecture, rhos: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """(rho values, op/s) series reproducing one curve of Fig 12."""
    if rhos is None:
        rhos = np.concatenate([np.arange(0.0, 33.0), [48.0, 64.0, 96.0, 128.0]])
    rhos = np.asarray(rhos, dtype=np.float64)
    ops = np.array([mixed_throughput_ops(arch, float(r)) for r in rhos])
    return rhos, ops


def peak_fraction(arch: Architecture, rho: float = 17.0) -> float:
    """Fraction of the FMA peak attainable at the given mix."""
    return mixed_throughput_ops(arch, rho) / arch.peak_ops
