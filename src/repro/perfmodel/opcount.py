"""Exact operation and byte counts per kernel, measured from execution plans.

The roofline analysis needs, per kernel, (a) the operation count — known
exactly from the algorithm (Algorithms 1-2: 17 real FMAs and one sine/cosine
evaluation per (pixel, visibility) pair) — and (b) the data movement.  The
paper measures (b); we model it from the data structures each kernel
provably touches, with the GPU shared-memory traffic constants documented
below (they encode the shared-memory layout of Section V-C and are the
model's analogue of the paper's measured values).

All functions take a :class:`repro.core.plan.Plan` so the counts reflect the
*actual* work distribution (subgrid occupancy, channel splits, flagged
visibilities) of the data set being analysed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.plan import Plan

#: Real multiply-adds per (pixel, visibility): 1 in the phase evaluation
#: f(x,y).g(u,v,w), 16 in the 4-polarisation complex accumulation
#: (Algorithm 1 caption).
FMAS_PER_PIXEL_VIS = 17

#: Shared-memory bytes one gridder thread moves per (pixel, visibility)
#: iteration: an 8-byte complex visibility value per polarisation (32 B),
#: a 12-byte uvw triple and the 4-byte phase-offset term.
GRIDDER_SHARED_BYTES = 48

#: Degridder shared traffic per (visibility, pixel) iteration: the 32-byte
#: corrected pixel, the 8-byte phase-index/phase-offset pair staged by the
#: second thread mapping (Section V-C-c), and a 24-byte share of the
#: double-buffered pixel batch staging.
DEGRIDDER_SHARED_BYTES = 64

#: Bytes of one 4-polarisation complex64 value.
_VIS_BYTES = 4 * 8
_UVW_BYTES = 3 * 4


@dataclass(frozen=True)
class KernelCounts:
    """Operation/byte totals for one kernel over a whole plan.

    Attributes
    ----------
    name:
        Kernel name (gridder / degridder / subgrid-fft / adder / splitter).
    fmas:
        Real fused multiply-add count.
    sincos_evals:
        Sine+cosine pair evaluations.
    bytes_device:
        Bytes moved from/to device (main) memory.
    bytes_shared:
        Bytes moved through GPU shared memory (0 for CPU-style kernels).
    visibilities:
        Visibilities processed (for MVis/s throughput).
    n_subgrids:
        Work items processed.
    """

    name: str
    fmas: float
    sincos_evals: float
    bytes_device: float
    bytes_shared: float
    visibilities: float
    n_subgrids: int

    @property
    def ops(self) -> float:
        """Paper op metric: FMA = 2 ops, sincos = 2 ops (sin + cos)."""
        return 2.0 * self.fmas + 2.0 * self.sincos_evals

    @property
    def flops(self) -> float:
        """Classic flop metric (sincos excluded): 2 per FMA."""
        return 2.0 * self.fmas

    @property
    def rho(self) -> float:
        """FMA : sincos mix (17 for the gridder/degridder, inf otherwise)."""
        if self.sincos_evals == 0:
            return float("inf")
        return self.fmas / self.sincos_evals

    @property
    def operational_intensity(self) -> float:
        """Ops per device-memory byte (Fig 11 x-axis)."""
        return self.ops / self.bytes_device if self.bytes_device else float("inf")

    @property
    def shared_intensity(self) -> float:
        """Ops per shared-memory byte (Fig 13 x-axis)."""
        return self.ops / self.bytes_shared if self.bytes_shared else float("inf")


def _pixel_vis_products(plan: Plan) -> tuple[float, float]:
    """(sum of N^2 * M over work items, total gridded visibilities)."""
    n2 = float(plan.subgrid_size * plan.subgrid_size)
    items = plan.items
    m = (items["time_end"] - items["time_start"]).astype(np.float64) * (
        items["channel_end"] - items["channel_start"]
    ).astype(np.float64)
    return float(n2 * m.sum()), float(m.sum())


def gridder_counts(plan: Plan, with_aterms: bool = False) -> KernelCounts:
    """Algorithm 1 totals for the whole plan."""
    pixel_vis, n_vis = _pixel_vis_products(plan)
    n2 = plan.subgrid_size**2
    k = plan.n_subgrids
    # corrections: taper multiply (4 pol complex scale = 8 FMAs/pixel) and,
    # optionally, the 2x2 A-term sandwich (two complex 2x2 matmuls/pixel).
    corrections = k * n2 * (8 + (112 if with_aterms else 0))
    per_item_bytes = (
        n_vis * (_VIS_BYTES + _UVW_BYTES / max(plan.n_channels, 1))  # vis + uvw reads
        + k * n2 * _VIS_BYTES  # subgrid writes
        + k * n2 * 4  # taper read
        + (2 * k * n2 * _VIS_BYTES if with_aterms else 0)
    )
    return KernelCounts(
        name="gridder",
        fmas=FMAS_PER_PIXEL_VIS * pixel_vis + corrections,
        sincos_evals=pixel_vis,
        bytes_device=per_item_bytes,
        bytes_shared=GRIDDER_SHARED_BYTES * pixel_vis,
        visibilities=n_vis,
        n_subgrids=k,
    )


def degridder_counts(plan: Plan, with_aterms: bool = False) -> KernelCounts:
    """Algorithm 2 totals for the whole plan."""
    pixel_vis, n_vis = _pixel_vis_products(plan)
    n2 = plan.subgrid_size**2
    k = plan.n_subgrids
    corrections = k * n2 * (8 + (112 if with_aterms else 0))
    per_item_bytes = (
        n_vis * (_VIS_BYTES + _UVW_BYTES / max(plan.n_channels, 1))  # vis writes + uvw
        + k * n2 * _VIS_BYTES  # subgrid reads
        + k * n2 * 4
        + (2 * k * n2 * _VIS_BYTES if with_aterms else 0)
    )
    return KernelCounts(
        name="degridder",
        fmas=FMAS_PER_PIXEL_VIS * pixel_vis + corrections,
        sincos_evals=pixel_vis,
        bytes_device=per_item_bytes,
        bytes_shared=DEGRIDDER_SHARED_BYTES * pixel_vis,
        visibilities=n_vis,
        n_subgrids=k,
    )


def subgrid_fft_counts(plan: Plan) -> KernelCounts:
    """Four N x N complex FFTs per subgrid (one per polarisation product)."""
    n = plan.subgrid_size
    k = plan.n_subgrids
    _, n_vis = _pixel_vis_products(plan)
    # 2-D complex FFT: 2N length-N transforms, 5 N log2 N flops each.
    flops = k * 4 * 2 * n * 5.0 * n * np.log2(n)
    return KernelCounts(
        name="subgrid-fft",
        fmas=flops / 2.0,
        sincos_evals=0.0,
        bytes_device=k * 2.0 * n * n * _VIS_BYTES,  # read + write
        bytes_shared=0.0,
        visibilities=n_vis,
        n_subgrids=k,
    )


def adder_counts(plan: Plan) -> KernelCounts:
    """Adder: read-modify-write of the grid region under every subgrid."""
    n2 = plan.subgrid_size**2
    k = plan.n_subgrids
    _, n_vis = _pixel_vis_products(plan)
    return KernelCounts(
        name="adder",
        fmas=k * n2 * 4.0,  # 4 complex adds = 8 real adds = 4 FMA-equivalents
        sincos_evals=0.0,
        bytes_device=k * n2 * _VIS_BYTES * 3.0,  # read subgrid, read+write grid
        bytes_shared=0.0,
        visibilities=n_vis,
        n_subgrids=k,
    )


def splitter_counts(plan: Plan) -> KernelCounts:
    """Splitter: pure copy from the grid into subgrid buffers."""
    n2 = plan.subgrid_size**2
    k = plan.n_subgrids
    _, n_vis = _pixel_vis_products(plan)
    return KernelCounts(
        name="splitter",
        fmas=0.0,
        sincos_evals=0.0,
        bytes_device=k * n2 * _VIS_BYTES * 2.0,  # read grid, write subgrid
        bytes_shared=0.0,
        visibilities=n_vis,
        n_subgrids=k,
    )


def wprojection_counts(
    n_visibilities: float, support: int, oversample: int = 8
) -> KernelCounts:
    """W-projection gridding totals (the WPG comparator of Fig 16).

    Per visibility: 4 polarisations x ``support**2`` cells x one complex
    multiply-add (4 real FMAs); no sine/cosine in the hot loop — the kernels
    are precomputed.  Device traffic per cell: one complex64 kernel value
    (8 B) plus the 4-polarisation atomic grid update (32 B written; Romein's
    work distribution accumulates per-thread in registers, so the grid is
    not read back).  That traffic is what saturates WPG at small supports —
    the reason the paper's Fig 16 shows IDG "outperform[ing] WPG
    significantly" precisely where kernels are small.
    """
    if support <= 0:
        raise ValueError("support must be positive")
    cells = float(n_visibilities) * support * support
    return KernelCounts(
        name=f"wpg-{support}",
        fmas=16.0 * cells,
        sincos_evals=0.0,
        bytes_device=cells * (8.0 + _VIS_BYTES),  # kernel load + grid update
        bytes_shared=cells * 8.0,
        visibilities=float(n_visibilities),
        n_subgrids=0,
    )


def idg_synthetic_counts(
    n_visibilities: float,
    subgrid_size: int,
    visibilities_per_subgrid: float = 1024.0,
    with_aterms: bool = False,
) -> KernelCounts:
    """Gridder counts for a hypothetical subgrid size (Fig 16's IDG lines).

    The Fig 16 comparison varies the required kernel support: IDG must use
    subgrids at least as large as the support (Section IV), so its
    per-visibility cost is ``36 * subgrid_size**2`` ops.  This helper builds
    the counts without constructing a plan, assuming a given mean subgrid
    occupancy (the benchmark plan's real occupancy is ~1000-2000).
    """
    if subgrid_size <= 0:
        raise ValueError("subgrid_size must be positive")
    if visibilities_per_subgrid <= 0:
        raise ValueError("visibilities_per_subgrid must be positive")
    n2 = float(subgrid_size * subgrid_size)
    pixel_vis = n2 * n_visibilities
    n_subgrids = max(1, int(round(n_visibilities / visibilities_per_subgrid)))
    corrections = n_subgrids * n2 * (8 + (112 if with_aterms else 0))
    bytes_device = (
        n_visibilities * (_VIS_BYTES + _UVW_BYTES / 16.0)
        + n_subgrids * n2 * _VIS_BYTES
        + n_subgrids * n2 * 4
        + (2 * n_subgrids * n2 * _VIS_BYTES if with_aterms else 0)
    )
    return KernelCounts(
        name=f"idg-{subgrid_size}",
        fmas=FMAS_PER_PIXEL_VIS * pixel_vis + corrections,
        sincos_evals=pixel_vis,
        bytes_device=bytes_device,
        bytes_shared=GRIDDER_SHARED_BYTES * pixel_vis,
        visibilities=float(n_visibilities),
        n_subgrids=n_subgrids,
    )
