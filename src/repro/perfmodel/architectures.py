"""Architecture database: Table I plus the execution-model parameters the
paper's analysis introduces (Sections VI-B/C/D).

Table I fields come straight from the paper.  The additional fields encode
how each architecture evaluates sine/cosine (the centrepiece of the modified
roofline analysis):

* **PASCAL** — special function units evaluate transcendentals *in parallel*
  with the FMA pipelines at 1/4 the instruction rate [28]; a sincos costs one
  extra issue slot on the FMA queue.
* **FIJI** — transcendentals run *on the same ALUs* as FMAs at a quarter
  rate [29]; a full sine+cosine evaluation with argument reduction costs
  ~24 FMA-instruction slots (calibrated so the model reproduces the paper's
  ~13 GFlops/W for FIJI).
* **HASWELL** — SVML medium-accuracy ``sincosf`` costs ~77 FMA-instruction
  slots per element (≈4.8 cycles/element on 2x8-wide FMA ports; calibrated
  to the paper's ~1.5 GFlops/W).

Shared-memory bandwidths (Fig 13) follow from the per-SM/CU LDS width;
``compute_power_w`` is the average draw while compute kernels run (board
power for GPUs measured by PowerSensor; package+DRAM for the CPU measured by
LIKWID), and ``host_power_w`` the host overhead the paper adds for GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Architecture:
    """One row of Table I plus execution-model parameters.

    Attributes
    ----------
    name:
        Short name used throughout the paper (HASWELL / FIJI / PASCAL).
    model:
        Marketing model string.
    arch_type:
        ``"CPU"`` or ``"GPU"``.
    microarchitecture:
        Table I "architecture" column.
    clock_ghz:
        Core clock (turbo where the paper notes it).
    n_fpus:
        Table I core config product (#ICs x #compute units x FPU
        instructions/cycle x vector size).
    peak_tflops:
        Peak single-precision TFlop/s; with the paper's op definition this
        is also the peak TOps/s (reached only with pure FMAs).
    mem_size_gb, mem_bandwidth_gbs, tdp_w:
        Remaining Table I columns.
    sincos_parallel:
        True when transcendentals execute on separate units (SFUs).
    sincos_slots:
        FMA-instruction slots one sine+cosine evaluation consumes on the FMA
        issue queue (serial architectures: the full cost; parallel: just the
        issue overhead).
    sfu_ratio:
        SFU instruction rate relative to the FMA instruction rate
        (parallel architectures only).
    shared_bandwidth_tbs:
        Aggregate shared-memory/L1 bandwidth in TB/s (Fig 13 ceiling).
    pcie_bandwidth_gbs:
        Host-device transfer bandwidth (GPUs; 0 for the CPU).
    compute_power_w:
        Average power while compute kernels execute.
    host_power_w:
        Host package+DRAM power attributed to GPU execution (Fig 14's
        "host" bars).
    """

    name: str
    model: str
    arch_type: str
    microarchitecture: str
    clock_ghz: float
    n_fpus: int
    peak_tflops: float
    mem_size_gb: float
    mem_bandwidth_gbs: float
    tdp_w: float
    sincos_parallel: bool
    sincos_slots: float
    sfu_ratio: float
    shared_bandwidth_tbs: float
    pcie_bandwidth_gbs: float
    compute_power_w: float
    host_power_w: float

    @property
    def peak_ops(self) -> float:
        """Peak op/s with the paper's op definition (+, -, *, sin, cos)."""
        return self.peak_tflops * 1e12

    @property
    def fma_instruction_rate(self) -> float:
        """FMA instructions per second (each FMA = 2 ops)."""
        return self.peak_ops / 2.0

    @property
    def is_gpu(self) -> bool:
        return self.arch_type == "GPU"


#: Dual-socket Intel Xeon E5-2697v3 system ("HASWELL").
HASWELL = Architecture(
    name="HASWELL",
    model="Intel Xeon E5-2697v3",
    arch_type="CPU",
    microarchitecture="Haswell-EP",
    clock_ghz=2.60,  # turbo
    n_fpus=448,  # 2 ICs x 14 cores x 2 FPUs x 8-wide
    peak_tflops=2.78,
    mem_size_gb=1536.0,
    mem_bandwidth_gbs=136.0,
    tdp_w=290.0,
    sincos_parallel=False,
    sincos_slots=77.0,  # SVML medium-accuracy sincosf, calibrated (see module doc)
    sfu_ratio=0.0,
    shared_bandwidth_tbs=3.0,  # aggregate L1 bandwidth (2 x 14 cores x ~96 B/cy)
    pcie_bandwidth_gbs=0.0,
    compute_power_w=330.0,  # package + DRAM under AVX2 load
    host_power_w=0.0,
)

#: AMD R9 Fury X system ("FIJI").
FIJI = Architecture(
    name="FIJI",
    model="AMD R9 Fury X",
    arch_type="GPU",
    microarchitecture="Fiji",
    clock_ghz=1.050,
    n_fpus=4096,  # 64 CUs x 64-wide
    peak_tflops=8.60,
    mem_size_gb=4.0,
    mem_bandwidth_gbs=512.0,
    tdp_w=275.0,
    sincos_parallel=False,
    sincos_slots=24.0,  # quarter-rate transcendentals [29] + argument reduction
    sfu_ratio=0.0,
    shared_bandwidth_tbs=8.6,  # 64 CUs x 128 B/cycle x 1.05 GHz
    pcie_bandwidth_gbs=16.0,
    compute_power_w=275.0,
    host_power_w=60.0,
)

#: NVIDIA GTX 1080 system ("PASCAL").
PASCAL = Architecture(
    name="PASCAL",
    model="NVIDIA GTX 1080",
    arch_type="GPU",
    microarchitecture="Pascal",
    clock_ghz=1.80,  # turbo
    n_fpus=2560,  # 40 SMs x 2 x 32-wide
    peak_tflops=9.22,
    mem_size_gb=8.0,
    mem_bandwidth_gbs=320.0,
    tdp_w=180.0,
    sincos_parallel=True,
    sincos_slots=1.0,  # one issue slot on the FMA queue per sincos
    sfu_ratio=0.25,  # 32 SFU vs 128 FMA lanes per SM [28]
    shared_bandwidth_tbs=9.2,  # 40 SMs x 128 B/cycle x 1.8 GHz
    pcie_bandwidth_gbs=16.0,
    compute_power_w=200.0,  # measured board draw under compute (PowerSensor)
    host_power_w=60.0,
)

#: All architectures of Table I, in the paper's order.
ALL_ARCHITECTURES: tuple[Architecture, ...] = (HASWELL, FIJI, PASCAL)


def by_name(name: str) -> Architecture:
    """Look up an architecture by its short name (case-insensitive)."""
    for arch in ALL_ARCHITECTURES:
        if arch.name == name.upper():
            return arch
    raise KeyError(f"unknown architecture {name!r}; expected one of "
                   f"{[a.name for a in ALL_ARCHITECTURES]}")


def table1_rows() -> list[dict]:
    """Table I as a list of dicts (used by the Table I benchmark target)."""
    return [
        {
            "model": a.model,
            "type": a.arch_type,
            "architecture": a.microarchitecture,
            "clock (GHz)": a.clock_ghz,
            "#FPUs": a.n_fpus,
            "peak (TFlops)": a.peak_tflops,
            "mem size (GB)": a.mem_size_gb,
            "mem bw (GB/s)": a.mem_bandwidth_gbs,
            "TDP (W)": a.tdp_w,
        }
        for a in ALL_ARCHITECTURES
    ]
