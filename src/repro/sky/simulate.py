"""Direct evaluation of the measurement equation (the package's oracle).

For point sources, Eq. 1 of the paper reduces to a finite sum

``V_pq(t, c) = sum_k A_p(l_k, m_k) B_k A_q(l_k, m_k)^H
              * exp(-2*pi*i * (u l_k + v m_k + w n_k))``

with ``n = 1 - sqrt(1 - l**2 - m**2)`` and (u, v, w) in wavelengths at channel
``c``.  This is exact (no gridding approximation) and therefore serves as the
ground truth for every gridder and degridder in the package — at O(sources x
visibilities) cost, so only small problems are feasible, which is all tests
need.
"""

from __future__ import annotations

import numpy as np

from repro.aterms.generators import ATermGenerator, IdentityATerm
from repro.aterms.jones import apply_sandwich
from repro.aterms.schedule import ATermSchedule
from repro.constants import COMPLEX_DTYPE, SPEED_OF_LIGHT
from repro.kernels.wkernel import n_term
from repro.sky.model import SkyModel


def _source_geometry(sky: SkyModel) -> np.ndarray:
    """``(n_sources, 3)`` direction components (l, m, n) per source."""
    n = n_term(sky.l, sky.m)
    return np.stack([sky.l, sky.m, n], axis=1)


def predict_baseline(
    uvw_m: np.ndarray,
    frequencies_hz: np.ndarray,
    sky: SkyModel,
    corrupted_brightness: np.ndarray | None = None,
    time_chunk: int = 256,
) -> np.ndarray:
    """Predict visibilities for one baseline.

    Parameters
    ----------
    uvw_m:
        ``(n_times, 3)`` uvw coordinates in metres.
    frequencies_hz:
        ``(n_channels,)`` channel frequencies.
    sky:
        The point-source model.
    corrupted_brightness:
        Optional pre-corrupted brightness per source: either
        ``(n_sources, 2, 2)`` (constant in time) or
        ``(n_times, n_sources, 2, 2)``.  Defaults to the sky's own matrices
        (identity A-terms).
    time_chunk:
        Number of timesteps processed per vectorised block (memory control).

    Returns
    -------
    ``(n_times, n_channels, 2, 2)`` complex64 visibilities.
    """
    uvw_m = np.asarray(uvw_m, dtype=np.float64)
    frequencies_hz = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
    n_times = uvw_m.shape[0]
    n_chan = frequencies_hz.size

    lmn = _source_geometry(sky)  # (K, 3)
    if corrupted_brightness is None:
        bright = sky.brightness  # (K, 2, 2)
        per_time = False
    else:
        bright = np.asarray(corrupted_brightness, dtype=np.complex128)
        per_time = bright.ndim == 4
        expected = (n_times, sky.n_sources, 2, 2) if per_time else (sky.n_sources, 2, 2)
        if bright.shape != expected:
            raise ValueError(f"corrupted_brightness shape {bright.shape} != {expected}")

    scale = frequencies_hz / SPEED_OF_LIGHT  # (C,)
    extended = bool(np.any(sky.sigma > 0))
    out = np.empty((n_times, n_chan, 2, 2), dtype=COMPLEX_DTYPE)
    for t0 in range(0, n_times, time_chunk):
        t1 = min(t0 + time_chunk, n_times)
        # geometric delay in metres: (T', K)
        delay_m = uvw_m[t0:t1] @ lmn.T
        # phase: (T', C, K)
        phase = -2.0 * np.pi * delay_m[:, np.newaxis, :] * scale[np.newaxis, :, np.newaxis]
        phasor = np.exp(1j * phase)  # idglint: disable=IDG002  (oracle: direct measurement equation)
        if extended:
            # Gaussian visibility envelope exp(-2 pi^2 sigma^2 (u^2 + v^2)),
            # analytic FT of a circular Gaussian (see GaussianSource)
            uv2_m = (uvw_m[t0:t1, 0] ** 2 + uvw_m[t0:t1, 1] ** 2)  # (T',)
            uv2 = uv2_m[:, np.newaxis] * scale[np.newaxis, :] ** 2  # (T', C)
            envelope = np.exp(  # idglint: disable=IDG002  (oracle: analytic Gaussian envelope)
                -2.0 * np.pi**2
                * sky.sigma[np.newaxis, np.newaxis, :] ** 2
                * uv2[:, :, np.newaxis]
            )
            phasor = phasor * envelope
        if per_time:
            out[t0:t1] = np.einsum("tck,tkij->tcij", phasor, bright[t0:t1], optimize=True)
        else:
            out[t0:t1] = np.einsum("tck,kij->tcij", phasor, bright, optimize=True)
    return out


def predict_visibilities(
    uvw_m: np.ndarray,
    frequencies_hz: np.ndarray,
    sky: SkyModel,
    baselines: np.ndarray | None = None,
    aterms: ATermGenerator | None = None,
    schedule: ATermSchedule | None = None,
    time_chunk: int = 256,
) -> np.ndarray:
    """Predict the full visibility set by direct evaluation of Eq. 1.

    Parameters
    ----------
    uvw_m:
        ``(n_baselines, n_times, 3)`` uvw coordinates in metres.
    frequencies_hz:
        ``(n_channels,)`` channel frequencies.
    sky:
        Point-source model.
    baselines:
        ``(n_baselines, 2)`` station index pairs; required when ``aterms`` is
        given (to know which stations' Jones fields corrupt each baseline).
    aterms, schedule:
        Direction-dependent effects and their update cadence.  ``None`` means
        identity A-terms.

    Returns
    -------
    ``(n_baselines, n_times, n_channels, 2, 2)`` complex64 visibilities.
    """
    uvw_m = np.asarray(uvw_m, dtype=np.float64)
    if uvw_m.ndim != 3 or uvw_m.shape[2] != 3:
        raise ValueError(f"uvw_m must be (n_baselines, n_times, 3), got {uvw_m.shape}")
    n_bl, n_times, _ = uvw_m.shape
    frequencies_hz = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))

    use_aterms = aterms is not None and not aterms.is_identity
    if use_aterms:
        if baselines is None:
            raise ValueError("baselines (station pairs) required with non-identity aterms")
        baselines = np.asarray(baselines)
        if baselines.shape != (n_bl, 2):
            raise ValueError(f"baselines must be ({n_bl}, 2), got {baselines.shape}")
        schedule = schedule or ATermSchedule(0)
        n_intervals = schedule.n_intervals(n_times)
        interval_of_t = np.asarray(
            [int(schedule.interval_of(t)) for t in range(n_times)], dtype=np.int64
        )
        stations = np.unique(baselines)
        # Jones per (station, interval, source): dict -> (K, 2, 2)
        jones: dict[tuple[int, int], np.ndarray] = {}
        for s in stations:
            for itv in range(n_intervals):
                jones[(int(s), itv)] = aterms.evaluate(int(s), itv, sky.l, sky.m)

    out = np.empty((n_bl, n_times, frequencies_hz.size, 2, 2), dtype=COMPLEX_DTYPE)
    for b in range(n_bl):
        if use_aterms:
            p, q = int(baselines[b, 0]), int(baselines[b, 1])
            # corrupted brightness per interval, expanded to per-time
            corrupted_by_interval = np.stack(  # idglint: disable=IDG003  (bounded: n_intervals)
                [
                    apply_sandwich(jones[(p, itv)], sky.brightness, jones[(q, itv)])
                    for itv in range(n_intervals)
                ]
            )  # (n_intervals, K, 2, 2)
            corrupted = corrupted_by_interval[interval_of_t]  # (T, K, 2, 2)
            out[b] = predict_baseline(
                uvw_m[b], frequencies_hz, sky, corrupted_brightness=corrupted,
                time_chunk=time_chunk,
            )
        else:
            out[b] = predict_baseline(uvw_m[b], frequencies_hz, sky, time_chunk=time_chunk)
    return out
