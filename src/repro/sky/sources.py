"""Random and structured source catalogues for tests and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.sky.model import SkyModel, brightness_from_stokes, brightness_unpolarized_unit


def random_sky(
    n_sources: int,
    image_size: float,
    fill_factor: float = 0.5,
    flux_range: tuple[float, float] = (0.1, 10.0),
    polarized_fraction: float = 0.0,
    seed: int = 0,
) -> SkyModel:
    """A random point-source field.

    Sources are placed uniformly inside a disc of radius
    ``fill_factor * image_size / 2`` (keeping them away from the taper's image
    edge) with fluxes log-uniform in ``flux_range``.  A ``polarized_fraction``
    of the sources get random fractional linear polarisation.
    """
    if n_sources <= 0:
        raise ValueError("n_sources must be positive")
    if not (0.0 < fill_factor <= 1.0):
        raise ValueError("fill_factor must be in (0, 1]")
    rng = np.random.default_rng(seed)
    radius = 0.5 * image_size * fill_factor * np.sqrt(rng.uniform(0, 1, n_sources))
    angle = rng.uniform(0, 2 * np.pi, n_sources)
    l = radius * np.cos(angle)
    m = radius * np.sin(angle)
    flux = np.exp(rng.uniform(np.log(flux_range[0]), np.log(flux_range[1]), n_sources))

    brightness = np.zeros((n_sources, 2, 2), dtype=np.complex128)
    for k in range(n_sources):
        if rng.uniform() < polarized_fraction:
            frac = rng.uniform(0.0, 0.3)
            angle_pol = rng.uniform(0, np.pi)
            q = flux[k] * frac * np.cos(2 * angle_pol)  # idglint: disable=IDG002  (setup: per-source)
            u = flux[k] * frac * np.sin(2 * angle_pol)  # idglint: disable=IDG002  (setup: per-source)
            brightness[k] = brightness_from_stokes(flux[k], q, u)
        else:
            brightness[k] = brightness_unpolarized_unit(flux[k])
    return SkyModel(l=l, m=m, brightness=brightness)


def grid_test_sky(
    image_size: float, n_per_side: int = 3, flux: float = 1.0, fill_factor: float = 0.6
) -> SkyModel:
    """A deterministic lattice of unpolarised unit sources.

    Useful for localisation tests: after imaging, every source must appear at
    its lattice position.
    """
    if n_per_side <= 0:
        raise ValueError("n_per_side must be positive")
    half = 0.5 * image_size * fill_factor
    coords = np.linspace(-half, half, n_per_side)
    ll, mm = np.meshgrid(coords, coords)
    n = ll.size
    brightness = np.broadcast_to(brightness_unpolarized_unit(flux), (n, 2, 2)).copy()
    return SkyModel(l=ll.ravel(), m=mm.ravel(), brightness=brightness)
