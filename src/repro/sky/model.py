"""Point-source sky models.

The sky brightness ``B(l, m)`` in the measurement equation is a 2x2 matrix
field (paper Eq. 1).  For a collection of point sources it reduces to a sum of
delta functions, each carrying a 2x2 *brightness matrix*; the full-Stokes
correlation convention is

``B = 0.5 * [[I + Q, U + iV], [U - iV, I - Q]]``

so an unpolarised 1 Jy source has ``XX = YY = 0.5``.  For the scalar-style
tests and examples, :func:`brightness_unpolarized_unit` uses ``B = I * eye``
instead, which makes the XX image read in source flux directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def brightness_from_stokes(
    stokes_i: float, stokes_q: float = 0.0, stokes_u: float = 0.0, stokes_v: float = 0.0
) -> np.ndarray:
    """2x2 brightness matrix from Stokes parameters (linear feeds)."""
    return 0.5 * np.array(
        [
            [stokes_i + stokes_q, stokes_u + 1j * stokes_v],
            [stokes_u - 1j * stokes_v, stokes_i - stokes_q],
        ],
        dtype=np.complex128,
    )


def brightness_unpolarized_unit(flux: float = 1.0) -> np.ndarray:
    """``flux * eye(2)`` — the convention where the XX image equals the flux."""
    return flux * np.eye(2, dtype=np.complex128)


@dataclass(frozen=True)
class GaussianSource:
    """A circular-Gaussian extended source.

    The measurement equation of a Gaussian of total flux ``F``, centre
    ``(l0, m0)`` and standard deviation ``sigma`` (direction cosines) is
    analytic:

    ``V(u, v) = B * exp(-2 pi^2 sigma^2 (u^2 + v^2))
              * exp(-2 pi i (u l0 + v m0 + w n0))``

    (the w term uses the centre direction — exact in the small-source
    limit).  This extends the oracle beyond point sources, so resolved
    emission can be tested end to end.
    """

    l: float
    m: float
    sigma: float
    brightness: np.ndarray

    def __post_init__(self) -> None:
        b = np.asarray(self.brightness, dtype=np.complex128)
        if b.shape != (2, 2):
            raise ValueError(f"brightness must be 2x2, got {b.shape}")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.l * self.l + self.m * self.m >= 1.0:
            raise ValueError(f"source direction ({self.l}, {self.m}) outside the unit sphere")
        object.__setattr__(self, "brightness", b)

    def envelope(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """The visibility-amplitude envelope ``exp(-2 pi^2 sigma^2 |uv|^2)``."""
        return np.exp(
            -2.0 * np.pi**2 * self.sigma**2 * (np.asarray(u) ** 2 + np.asarray(v) ** 2)
        )


@dataclass(frozen=True)
class PointSource:
    """A single point source.

    Attributes
    ----------
    l, m:
        Direction cosines relative to the phase centre.
    brightness:
        2x2 complex brightness matrix (see module docstring).
    """

    l: float
    m: float
    brightness: np.ndarray

    def __post_init__(self) -> None:
        b = np.asarray(self.brightness, dtype=np.complex128)
        if b.shape != (2, 2):
            raise ValueError(f"brightness must be 2x2, got {b.shape}")
        if self.l * self.l + self.m * self.m >= 1.0:
            raise ValueError(f"source direction ({self.l}, {self.m}) outside the unit sphere")
        object.__setattr__(self, "brightness", b)


class SkyModel:
    """An immutable collection of sources in array-of-arrays form.

    Attributes
    ----------
    l, m:
        ``(n_sources,)`` direction cosines.
    brightness:
        ``(n_sources, 2, 2)`` complex brightness matrices.
    sigma:
        ``(n_sources,)`` circular-Gaussian widths in direction cosines;
        0 = point source (the default).
    """

    __slots__ = ("l", "m", "brightness", "sigma")

    def __init__(self, l: np.ndarray, m: np.ndarray, brightness: np.ndarray,
                 sigma: np.ndarray | None = None):
        l = np.atleast_1d(np.asarray(l, dtype=np.float64))
        m = np.atleast_1d(np.asarray(m, dtype=np.float64))
        brightness = np.asarray(brightness, dtype=np.complex128)
        if brightness.ndim == 2:
            brightness = brightness[np.newaxis]
        if l.shape != m.shape or l.ndim != 1:
            raise ValueError("l and m must be matching 1-D arrays")
        if brightness.shape != (l.size, 2, 2):
            raise ValueError(
                f"brightness must be (n_sources, 2, 2), got {brightness.shape} for {l.size} sources"
            )
        if np.any(l * l + m * m >= 1.0):
            raise ValueError("all sources must lie inside the unit sphere")
        if sigma is None:
            sigma = np.zeros(l.size, dtype=np.float64)
        else:
            sigma = np.atleast_1d(np.asarray(sigma, dtype=np.float64))
            if sigma.shape != l.shape:
                raise ValueError("sigma must match l/m in shape")
            if np.any(sigma < 0):
                raise ValueError("sigma must be >= 0")
        self.l = l
        self.m = m
        self.brightness = brightness
        self.sigma = sigma

    @classmethod
    def from_sources(cls, sources: list) -> "SkyModel":
        """Build from :class:`PointSource` and/or :class:`GaussianSource`."""
        if not sources:
            raise ValueError("empty source list")
        return cls(
            l=np.array([s.l for s in sources]),
            m=np.array([s.m for s in sources]),
            brightness=np.stack([s.brightness for s in sources]),
            sigma=np.array([getattr(s, "sigma", 0.0) for s in sources]),
        )

    @classmethod
    def single_gaussian(cls, l: float, m: float, sigma: float,
                        flux: float = 1.0) -> "SkyModel":
        """One unpolarised circular-Gaussian source (``B = flux * eye``)."""
        return cls(
            l=np.array([l]), m=np.array([m]),
            brightness=brightness_unpolarized_unit(flux),
            sigma=np.array([sigma]),
        )

    @classmethod
    def single(cls, l: float, m: float, flux: float = 1.0) -> "SkyModel":
        """One unpolarised source with ``B = flux * eye`` (scalar convention)."""
        return cls(l=np.array([l]), m=np.array([m]), brightness=brightness_unpolarized_unit(flux))

    @property
    def n_sources(self) -> int:
        return self.l.size

    def total_flux_xx(self) -> float:
        """Sum of the XX brightness components (real part)."""
        return float(self.brightness[:, 0, 0].real.sum())

    @property
    def has_extended_sources(self) -> bool:
        return bool(np.any(self.sigma > 0))

    def __iter__(self):
        for k in range(self.n_sources):
            if self.sigma[k] > 0:
                yield GaussianSource(
                    float(self.l[k]), float(self.m[k]), float(self.sigma[k]),
                    self.brightness[k],
                )
            else:
                yield PointSource(
                    float(self.l[k]), float(self.m[k]), self.brightness[k]
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SkyModel(n_sources={self.n_sources}, flux_xx={self.total_flux_xx():.3g})"

    def to_image(self, grid_size: int, image_size: float) -> np.ndarray:
        """Rasterise onto a centered model image, shape ``(4, n, n)``.

        Each source is deposited into its *nearest* pixel (the model-image
        convention used by CLEAN components); sources falling outside the
        field of view raise.  Polarisation order is XX, XY, YX, YY.
        """
        image = np.zeros((4, grid_size, grid_size), dtype=np.complex128)
        dl = image_size / grid_size
        x = np.rint(self.l / dl).astype(np.int64) + grid_size // 2
        y = np.rint(self.m / dl).astype(np.int64) + grid_size // 2
        if np.any((x < 0) | (x >= grid_size) | (y < 0) | (y >= grid_size)):
            raise ValueError("source outside the field of view")
        flat = self.brightness.reshape(self.n_sources, 4)
        for pol in range(4):
            np.add.at(image[pol], (y, x), flat[:, pol])
        return image
