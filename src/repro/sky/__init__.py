"""Sky models and the direct measurement-equation predictor.

:mod:`repro.sky.simulate` evaluates the paper's Eq. 1 *exactly* (a direct sum
over point sources, with full w-terms and optional A-terms).  It is the ground
truth every gridder/degridder in the package is validated against, and the
generator of the synthetic visibility sets used by the benchmarks.
"""

from repro.sky.model import PointSource, SkyModel, brightness_from_stokes
from repro.sky.sources import random_sky, grid_test_sky
from repro.sky.simulate import predict_visibilities, predict_baseline

__all__ = [
    "PointSource",
    "SkyModel",
    "brightness_from_stokes",
    "random_sky",
    "grid_test_sky",
    "predict_visibilities",
    "predict_baseline",
]
