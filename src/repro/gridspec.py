"""Master grid geometry shared by IDG, the baselines and the imaging layer.

A :class:`GridSpec` ties together the two rasters every gridder must agree on:

* the **image**: ``grid_size`` pixels spanning ``image_size`` direction
  cosines (pixel scale ``dl = image_size / grid_size``), and
* the **uv grid**: ``grid_size`` cells of ``du = 1 / image_size`` wavelengths.

Both rasters are *centered*: index ``grid_size // 2`` is the origin (see
:mod:`repro.kernels.fft`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.fft import fourier_coordinates, image_coordinates


@dataclass(frozen=True)
class GridSpec:
    """Geometry of the master grid / image pair.

    Parameters
    ----------
    grid_size:
        Number of pixels along each axis of the grid and the image
        (the paper's benchmark uses 2048).
    image_size:
        Full field of view in direction cosines (~radians); the paper's
        SKA1-low set corresponds to a ~1 cell / ~10 arcsec scale — benchmarks
        pick values that keep sources comfortably inside the field.
    """

    grid_size: int
    image_size: float

    def __post_init__(self) -> None:
        if self.grid_size <= 0 or self.grid_size % 2:
            raise ValueError(f"grid_size must be positive and even, got {self.grid_size}")
        if not (0.0 < self.image_size < 2.0):
            raise ValueError(
                f"image_size must be in (0, 2) direction cosines, got {self.image_size}"
            )

    @property
    def pixel_scale(self) -> float:
        """Image pixel size in direction cosines (``dl``)."""
        return self.image_size / self.grid_size

    @property
    def cell_size(self) -> float:
        """uv cell size in wavelengths (``du = 1 / image_size``)."""
        return 1.0 / self.image_size

    @property
    def max_uv(self) -> float:
        """Largest |u| (wavelengths) representable on the grid (half extent)."""
        return 0.5 * self.grid_size * self.cell_size

    def l_coordinates(self) -> np.ndarray:
        """Centered direction-cosine coordinates of the image pixels."""
        return image_coordinates(self.grid_size, self.image_size)

    def u_coordinates(self) -> np.ndarray:
        """Centered uv coordinates (wavelengths) of the grid cells."""
        return fourier_coordinates(self.grid_size, self.image_size)

    def uv_to_pixel(self, u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Continuous (possibly fractional) grid pixel coordinates of (u, v).

        ``u``/``v`` in wavelengths.  The returned coordinates follow numpy
        indexing: first coordinate of the *grid array* is v (rows), but this
        helper returns ``(pix_u, pix_v)`` matching its argument order.
        """
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        return (
            u * self.image_size + self.grid_size // 2,
            v * self.image_size + self.grid_size // 2,
        )

    def pixel_to_uv(self, pix_u: np.ndarray, pix_v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`uv_to_pixel`."""
        pix_u = np.asarray(pix_u, dtype=np.float64)
        pix_v = np.asarray(pix_v, dtype=np.float64)
        return (
            (pix_u - self.grid_size // 2) * self.cell_size,
            (pix_v - self.grid_size // 2) * self.cell_size,
        )

    def contains_uv(self, u: np.ndarray, v: np.ndarray, margin_cells: float = 0.0) -> np.ndarray:
        """Boolean mask of (u, v) points that fall on the grid.

        ``margin_cells`` shrinks the acceptance window, e.g. by a kernel
        half-support, so a convolution footprint stays inside the grid.
        """
        pu, pv = self.uv_to_pixel(u, v)
        lo = margin_cells
        hi = self.grid_size - 1 - margin_cells
        return (pu >= lo) & (pu <= hi) & (pv >= lo) & (pv <= hi)

    def allocate_grid(self, n_correlations: int = 4, dtype=np.complex64) -> np.ndarray:
        """Empty master grid of shape ``(n_correlations, grid_size, grid_size)``."""
        return np.zeros((n_correlations, self.grid_size, self.grid_size), dtype=dtype)
