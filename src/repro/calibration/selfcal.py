"""Self-calibration major cycles: imaging and gain estimation closed-loop.

The classic VLA self-cal loop (Pearson & Readhead 1984) alternates between
two solvers that each need the other's output:

1. **Image** the data with the current gain solutions applied, and CLEAN the
   brightest emission into the sky model.
2. **Solve** per-station gains with StEFCal against visibilities predicted
   from that model, and subtract the (re-corrupted) model from the data to
   expose fainter residual structure for the next round.

The twist here is *how* step 1 applies the gains: instead of dividing the
visibilities (the usual ``CORRECTED_DATA`` column), the gain solutions are
folded into the gridder as A-terms — :class:`repro.aterms.GainATerm` in
``calibrate`` mode on the plan's :class:`~repro.aterms.ATermSchedule` — so
the calibrated image falls out of an ordinary IDG gridding pass.  That is
exactly the paper's argument: direction-independent corrections ride along
with the image-domain A-term machinery at no extra cost, and the same loop
generalises unchanged to direction-*dependent* solutions.

The imaging side is any :class:`repro.imaging.pipeline.FTProcessor`
(2d / w-stacking / facets / both), so wide-field self-cal composes freely
with the w-term handling — and with any executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.aterms.generators import GainATerm
from repro.aterms.schedule import ATermSchedule
from repro.calibration.gains import corrupt_with_gains
from repro.calibration.stefcal import stefcal
from repro.constants import COMPLEX_DTYPE
from repro.imaging.clean import CleanResult, hogbom_clean
from repro.imaging.metrics import dynamic_range
from repro.imaging.pipeline import FTProcessor, ImagingContext, make_ftprocessor

__all__ = [
    "SelfCalConfig",
    "SelfCalIteration",
    "SelfCalResult",
    "corrupt_with_interval_gains",
    "gain_amplitude_error",
    "self_calibrate",
    "selfcal_schedule",
]


@dataclass(frozen=True)
class SelfCalConfig:
    """Knobs of the self-cal loop.

    Attributes
    ----------
    n_cycles:
        Maximum number of self-cal major cycles.  Amplitude errors contract
        geometrically per cycle, then snap to the noise floor once the model
        dominates the artefacts — budget generously; the loop stops early on
        ``gain_tolerance`` anyway.
    n_major_per_cycle:
        Inner CLEAN major cycles (predict/subtract rounds with gains held
        fixed) used to rebuild the model within each self-cal cycle.
    phase_only_cycles:
        Bootstrap cycles: the first this-many cycles CLEAN *shallow*
        (``bootstrap_major_gain``, one inner major cycle) and project their
        solutions to unit amplitude.  The first model comes from the
        *uncalibrated* image; a deep CLEAN would absorb the corruption into
        the model (leaving StEFCal nothing to solve — ``g = 1`` explains a
        model built from the corrupted image), and an amplitude solve
        against a shallow model locks onto the wrong flux scale.  A shallow
        model of the dominant emission plus a phase-only solve sharpens the
        next image without either failure mode.
    bootstrap_major_gain:
        CLEAN depth of the bootstrap cycles: stop at this fraction of the
        initial peak (0.5 = clean only the top half of the dominant source).
    solution_interval:
        Timesteps per gain solution (0 = one solution for the whole
        observation).  Also the A-term update cadence of the imaging plan,
        so gain solutions and their application are interval-aligned.
    gain_tolerance:
        Convergence: stop once ``max |g_new - g_old|`` drops below this.
    clean_gain, minor_iterations, threshold_factor, clean_window_fraction,
    major_gain:
        CLEAN parameters, with :class:`repro.imaging.ImagingCycle`'s
        semantics (auto-threshold ``max(factor * rms, (1 - major_gain) *
        peak)``, peaks restricted to the central window).
    stefcal_max_iterations, stefcal_tolerance, reference_station:
        StEFCal parameters (see :func:`repro.calibration.stefcal`).
    """

    n_cycles: int = 20
    n_major_per_cycle: int = 2
    phase_only_cycles: int = 1
    bootstrap_major_gain: float = 0.5
    solution_interval: int = 0
    gain_tolerance: float = 1e-4
    clean_gain: float = 0.1
    minor_iterations: int = 200
    threshold_factor: float = 3.0
    clean_window_fraction: float = 0.75
    major_gain: float = 0.8
    stefcal_max_iterations: int = 200
    stefcal_tolerance: float = 1e-8
    reference_station: int = 0

    def __post_init__(self) -> None:
        if self.n_cycles <= 0:
            raise ValueError("n_cycles must be positive")
        if self.n_major_per_cycle <= 0:
            raise ValueError("n_major_per_cycle must be positive")
        if self.phase_only_cycles < 0:
            raise ValueError("phase_only_cycles must be >= 0")
        if self.solution_interval < 0:
            raise ValueError("solution_interval must be >= 0")
        if not (0.0 < self.major_gain <= 1.0):
            raise ValueError("major_gain must be in (0, 1]")


@dataclass(frozen=True)
class SelfCalIteration:
    """Telemetry of one self-cal cycle.

    ``gain_amplitude_error`` is populated only when the true gains are known
    (simulations); ``None`` on real data.
    """

    cycle: int
    residual_rms: float
    residual_peak: float
    dynamic_range: float
    clean_flux: float
    gain_change: float
    gain_amplitude_error: float | None
    stefcal_converged: bool
    stefcal_iterations: int


@dataclass
class SelfCalResult:
    """Result of :func:`self_calibrate`.

    Attributes
    ----------
    gains:
        ``(n_intervals, n_stations)`` final complex gain solutions.
    model_image:
        ``(G, G)`` Stokes-I CLEAN component image.
    residual_image:
        Final calibrated Stokes-I residual dirty image.
    psf:
        ``(G, G)`` PSF used by CLEAN.
    history:
        Per-cycle :class:`SelfCalIteration` telemetry.
    converged:
        True if the gain update fell below ``gain_tolerance`` before the
        cycle budget ran out.
    """

    gains: np.ndarray
    model_image: np.ndarray
    residual_image: np.ndarray
    psf: np.ndarray
    history: list[SelfCalIteration] = field(default_factory=list)
    converged: bool = False

    @property
    def n_cycles(self) -> int:
        return len(self.history)

    def restored(self):
        """Restored image (model convolved with the clean beam + residual);
        returns ``(restored_image, beam_fit)``."""
        from repro.imaging.restore import restore_image

        return restore_image(self.model_image, self.residual_image, psf=self.psf)


def selfcal_schedule(config: SelfCalConfig) -> ATermSchedule:
    """The A-term schedule matching the gain solution cadence."""
    return ATermSchedule(update_interval=config.solution_interval)


def corrupt_with_interval_gains(
    visibilities: np.ndarray,
    gains: np.ndarray,
    baselines: np.ndarray,
    solution_interval: int = 0,
) -> np.ndarray:
    """Apply ``V'_pq = g_p V_pq conj(g_q)`` with per-interval gain rows.

    ``gains`` is ``(n_intervals, n_stations)``; timestep ``t`` uses row
    ``t // solution_interval`` (clamped to the last row), matching both
    :func:`repro.calibration.stefcal` chunking and
    :class:`~repro.aterms.ATermSchedule` interval indexing.
    """
    gains = np.atleast_2d(np.asarray(gains))
    n_times = visibilities.shape[1]
    interval = solution_interval or n_times
    out = np.empty_like(visibilities)
    for k in range(0, n_times, interval):
        row = min(k // interval, gains.shape[0] - 1)
        out[:, k : k + interval] = corrupt_with_gains(
            visibilities[:, k : k + interval], gains[row], baselines
        )
    return out


def gain_amplitude_error(solved: np.ndarray, true: np.ndarray) -> float:
    """Worst-case relative amplitude error ``max | |g_sol|/|g_true| - 1 |``.

    ``true`` broadcasts against ``solved`` (a single gain row is compared
    with every solved interval).
    """
    solved = np.atleast_2d(np.asarray(solved))
    true = np.atleast_2d(np.asarray(true))
    ratio = np.abs(solved) / np.abs(true)
    return float(np.abs(ratio - 1.0).max())


def _clean_window(grid_size: int, fraction: float) -> np.ndarray | None:
    if not (0.0 < fraction < 1.0):
        return None
    margin = int(round(grid_size * (1.0 - fraction) / 2.0))
    window = np.zeros((grid_size, grid_size), dtype=bool)
    window[margin : grid_size - margin, margin : grid_size - margin] = True
    return window


def _windowed_rms(image: np.ndarray, window: np.ndarray | None) -> float:
    values = image[window] if window is not None else image
    return float(np.sqrt((values**2).mean()))


def _windowed_peak(image: np.ndarray, window: np.ndarray | None) -> float:
    values = image[window] if window is not None else image
    return float(np.abs(values).max())


def _unit_visibilities(shape: tuple[int, ...]) -> np.ndarray:
    unit = np.zeros(shape + (2, 2), dtype=COMPLEX_DTYPE)
    unit[..., 0, 0] = 1.0
    unit[..., 1, 1] = 1.0
    return unit


def _make_psf(processor: FTProcessor, vis_shape: tuple[int, ...]) -> np.ndarray:
    """PSF from unit visibilities with identity A-terms, peak-normalised."""
    unit = _unit_visibilities(vis_shape)
    psf = processor.invert(unit, aterms=None).stokes_i
    g = psf.shape[0]
    peak = psf[g // 2, g // 2]
    if peak == 0:
        raise RuntimeError("PSF centre is zero — no visibilities were gridded")
    return psf / peak


def _clean_pass(
    residual_image: np.ndarray,
    psf: np.ndarray,
    window: np.ndarray | None,
    config: SelfCalConfig,
    major_gain: float | None = None,
) -> CleanResult:
    rms = _windowed_rms(residual_image, window)
    peak = _windowed_peak(residual_image, window)
    gain_fraction = config.major_gain if major_gain is None else major_gain
    threshold = max(config.threshold_factor * rms, (1.0 - gain_fraction) * peak)
    return hogbom_clean(
        residual_image,
        psf,
        gain=config.clean_gain,
        threshold=threshold,
        max_iterations=config.minor_iterations,
        window=window,
    )


def self_calibrate(
    context: ImagingContext,
    visibilities: np.ndarray,
    n_stations: int,
    config: SelfCalConfig | None = None,
    kind: str = "2d",
    true_gains: np.ndarray | None = None,
    **processor_options,
) -> SelfCalResult:
    """Run self-cal major cycles on a corrupted visibility set.

    Parameters
    ----------
    context:
        Imaging context (gridder, geometry, executor).  Its
        ``aterm_schedule`` is overridden with the gain solution cadence so
        gain A-terms land on interval-aligned subgrids, and its ``aterms``
        are ignored — the loop supplies :class:`~repro.aterms.GainATerm`
        fields itself.
    visibilities:
        ``(n_baselines, n_times, n_channels, 2, 2)`` observed (corrupted)
        visibilities.
    n_stations:
        Number of stations (gain solutions per interval).
    config:
        Loop parameters (:class:`SelfCalConfig`; defaults used if ``None``).
    kind:
        FT processor kind (``"2d"``, ``"wstack"``, ``"facets"``,
        ``"wstack_facets"``) — wide-field self-cal composes with the w-term
        machinery.
    true_gains:
        Optional injected gains of a simulation; enables the
        ``gain_amplitude_error`` telemetry column.
    processor_options:
        Extra options for :func:`repro.imaging.pipeline.make_ftprocessor`
        (``n_w_planes``, ``n_facets``, ...).

    Each cycle rebuilds the sky model from scratch: image the data through a
    ``calibrate``-mode :class:`~repro.aterms.GainATerm` (re-gridding applies
    the current gains), CLEAN over ``n_major_per_cycle`` inner major cycles
    (predict/subtract with the gains held fixed), then solve StEFCal against
    the model prediction and re-image.  Rebuilding, rather than accumulating
    components across self-cal cycles, is what lets the loop *unlearn* the
    distorted structure the first (uncalibrated) image puts into the
    bootstrap model — cycle 0 only needs to get the phases roughly right;
    cycle 1 re-images with those solutions and recovers the structure.
    The first cycle CLEANs before solving — StEFCal against an empty model
    would leave every station unconstrained.

    **Amplitude convention.**  Self-cal alone cannot determine the global
    flux scale: for any ``c``, gains ``c * g`` together with a model of flux
    ``F / c**2`` reproduce the data exactly, so an unconstrained loop drifts
    along this degenerate direction (each solve multiplies the amplitudes by
    ``1/sqrt(captured flux fraction)``, which compounds).  The loop pins the
    scale with the same convention StEFCal already uses for phase: the
    *reference station's* gain amplitude is unity.  Returned gains therefore
    recover the injected ones only after those are normalised identically
    (``g_true / |g_true[reference_station]|``).
    """
    config = config or SelfCalConfig()
    visibilities = np.asarray(visibilities)
    if visibilities.ndim != 5 or visibilities.shape[3:] != (2, 2):
        raise ValueError("expected (n_bl, n_times, n_channels, 2, 2) visibilities")
    n_times = visibilities.shape[1]
    schedule = selfcal_schedule(config)
    n_intervals = schedule.n_intervals(n_times)

    context = replace(context, aterms=None, aterm_schedule=schedule)
    processor = make_ftprocessor(context, kind=kind, **processor_options)

    g = context.idg.gridspec.grid_size
    window = _clean_window(g, config.clean_window_fraction)
    psf = _make_psf(processor, visibilities.shape[:3])

    gains = np.ones((n_intervals, n_stations), dtype=np.complex128)
    model = np.zeros((g, g), dtype=np.float64)
    model_vis = np.zeros_like(visibilities)
    residual_image = np.zeros((g, g), dtype=np.float64)
    history: list[SelfCalIteration] = []
    converged = False

    for cycle in range(config.n_cycles):
        bootstrap = cycle < config.phase_only_cycles
        n_major = 1 if bootstrap else max(1, config.n_major_per_cycle)
        major_gain = config.bootstrap_major_gain if bootstrap else None
        calibrate_aterm = GainATerm(gains, mode="calibrate")
        # rebuild the model from scratch against the current solutions
        model = np.zeros((g, g), dtype=np.float64)  # idglint: disable=IDG003  (bounded: n_cycles)
        model_vis = np.zeros_like(visibilities)  # idglint: disable=IDG003  (bounded: n_cycles)
        clean_flux = 0.0
        for _ in range(n_major):
            residual_vis = visibilities - corrupt_with_interval_gains(
                model_vis, gains, context.baselines, config.solution_interval
            )
            residual_image = processor.invert(
                residual_vis, aterms=calibrate_aterm
            ).stokes_i
            clean_result = _clean_pass(
                residual_image, psf, window, config, major_gain=major_gain
            )
            if len(clean_result.components) == 0:
                break
            model += clean_result.model_image
            clean_flux += float(clean_result.component_flux())
            model_vis = processor.predict(model, aterms=None)

        if not model.any():
            raise RuntimeError(
                "CLEAN produced an empty model — nothing to calibrate "
                "against (lower threshold_factor or check the data)"
            )
        solution = stefcal(
            visibilities,
            model_vis,
            context.baselines,
            n_stations,
            solution_interval=config.solution_interval,
            max_iterations=config.stefcal_max_iterations,
            tolerance=config.stefcal_tolerance,
            reference_station=config.reference_station,
        )
        new_gains = solution.gains
        if bootstrap:
            amplitude = np.abs(new_gains)
            amplitude[amplitude == 0] = 1.0
            new_gains = new_gains / amplitude
        else:
            # Self-cal cannot determine the global amplitude scale: for any
            # c, gains c*g with model flux F/c**2 fit the data exactly (the
            # flux-scale degeneracy).  Pin it with the same convention that
            # already fixes the phase: the reference station's amplitude is
            # unity.  Simulations must normalise injected gains identically
            # before comparing.
            reference = np.abs(new_gains[:, config.reference_station])
            reference[reference == 0] = 1.0
            new_gains = new_gains / reference[:, np.newaxis]
        gain_change = float(np.abs(new_gains - gains).max())
        gains = new_gains

        residual_vis = visibilities - corrupt_with_interval_gains(
            model_vis, gains, context.baselines, config.solution_interval
        )
        residual_image = processor.invert(
            residual_vis, aterms=GainATerm(gains, mode="calibrate")
        ).stokes_i

        amp_error = (
            gain_amplitude_error(gains, true_gains)
            if true_gains is not None
            else None
        )
        history.append(
            SelfCalIteration(
                cycle=cycle,
                residual_rms=_windowed_rms(residual_image, window),
                residual_peak=_windowed_peak(residual_image, window),
                dynamic_range=float(dynamic_range(model + residual_image)),
                clean_flux=clean_flux,
                gain_change=gain_change,
                gain_amplitude_error=amp_error,
                stefcal_converged=bool(solution.converged.all()),
                stefcal_iterations=int(solution.n_iterations.max()),
            )
        )
        if gain_change < config.gain_tolerance:
            converged = True
            break

    return SelfCalResult(
        gains=gains,
        model_image=model,
        residual_image=residual_image,
        psf=psf,
        history=history,
        converged=converged,
    )
