"""Calibration substrate (paper Fig 1, step 2).

The paper's pipeline corrects "instrument parameters and environmental
effects" before imaging; this package provides the standard
direction-independent piece: per-station complex gains estimated with the
alternating-direction implicit solver of Salvini & Wijnholds (2014),
universally known as **StEFCal** — the algorithm LOFAR and SKA pipelines
use.  ``gains`` applies/corrupts with gain solutions; ``stefcal`` estimates
them from (data, model) visibility pairs.
"""

from repro.calibration.gains import (
    apply_gains,
    corrupt_with_gains,
    random_gains,
)
from repro.calibration.stefcal import StefcalResult, stefcal

__all__ = [
    "apply_gains",
    "corrupt_with_gains",
    "random_gains",
    "StefcalResult",
    "stefcal",
]
