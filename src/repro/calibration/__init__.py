"""Calibration substrate (paper Fig 1, step 2).

The paper's pipeline corrects "instrument parameters and environmental
effects" before imaging; this package provides the standard
direction-independent piece: per-station complex gains estimated with the
alternating-direction implicit solver of Salvini & Wijnholds (2014),
universally known as **StEFCal** — the algorithm LOFAR and SKA pipelines
use.  ``gains`` applies/corrupts with gain solutions; ``stefcal`` estimates
them from (data, model) visibility pairs; ``selfcal`` closes the loop with
imaging — alternating CLEAN model building and StEFCal solving, folding the
solutions back into the gridder as A-terms.
"""

from repro.calibration.gains import (
    apply_gains,
    corrupt_with_gains,
    random_gains,
)
from repro.calibration.stefcal import StefcalResult, stefcal
from repro.calibration.selfcal import (
    SelfCalConfig,
    SelfCalIteration,
    SelfCalResult,
    corrupt_with_interval_gains,
    gain_amplitude_error,
    self_calibrate,
    selfcal_schedule,
)

__all__ = [
    "apply_gains",
    "corrupt_with_gains",
    "random_gains",
    "StefcalResult",
    "stefcal",
    "SelfCalConfig",
    "SelfCalIteration",
    "SelfCalResult",
    "corrupt_with_interval_gains",
    "gain_amplitude_error",
    "self_calibrate",
    "selfcal_schedule",
]
