"""StEFCal: alternating-direction per-station gain estimation.

Salvini & Wijnholds (2014).  Given data ``V_pq`` and model ``M_pq`` with the
corruption model ``V_pq = g_p M_pq conj(g_q)``, each iteration solves every
station's gain in closed form with all other gains held fixed:

``g_p = sum_q g_q A[p, q] / sum_q |g_q|^2 B[p, q]``

where ``A[p, q] = sum_samples V_pq conj(M_pq)`` and
``B[p, q] = sum_samples |M_pq|^2`` accumulate over all (time, channel,
polarisation) samples of the solution interval — so the per-iteration cost
is O(n_stations^2) regardless of data volume.  Every second iteration
averages with the previous solution, the damping that gives StEFCal its
guaranteed convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StefcalResult:
    """Gain solutions per solution interval.

    Attributes
    ----------
    gains:
        ``(n_intervals, n_stations)`` complex gains (reference station's
        phase zeroed).
    n_iterations:
        Iterations used per interval.
    converged:
        Convergence flag per interval.  An interval containing any
        unconstrained station reports ``False``.
    constrained:
        ``(n_intervals, n_stations)`` bool: False where a station appears on
        no baseline with model power in that interval — its gain is not
        determined by the data and is reported as exactly 1.
    """

    gains: np.ndarray
    n_iterations: np.ndarray
    converged: np.ndarray
    constrained: np.ndarray

    @property
    def n_intervals(self) -> int:
        return self.gains.shape[0]


def _accumulate_normal_matrices(
    data: np.ndarray, model: np.ndarray, baselines: np.ndarray, n_stations: int
) -> tuple[np.ndarray, np.ndarray]:
    """Build A (correlation) and B (model power) station matrices.

    ``data``/``model``: ``(n_baselines, n_samples)`` complex (samples =
    flattened time x channel x polarisation within one solution interval).
    """
    a = np.zeros((n_stations, n_stations), dtype=np.complex128)
    b = np.zeros((n_stations, n_stations), dtype=np.float64)
    corr = (data * np.conj(model)).sum(axis=1)
    power = (np.abs(model) ** 2).sum(axis=1)
    p_idx = baselines[:, 0]
    q_idx = baselines[:, 1]
    a[p_idx, q_idx] = corr
    a[q_idx, p_idx] = np.conj(corr)
    b[p_idx, q_idx] = power
    b[q_idx, p_idx] = power
    return a, b


def _solve_interval(
    a: np.ndarray,
    b: np.ndarray,
    max_iterations: int,
    tolerance: float,
    reference_station: int,
) -> tuple[np.ndarray, int, bool, np.ndarray]:
    n_stations = a.shape[0]
    gains = np.ones(n_stations, dtype=np.complex128)
    # A station with an all-zero row in B appears on no baseline with model
    # power: its closed-form update is 0/0 and nothing in the data constrains
    # it.  Solve the rest normally; the unconstrained stations keep unit gain
    # and force the interval's converged flag to False.
    constrained = b.any(axis=1)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        previous = gains.copy()
        numerator = a @ gains
        denominator = b @ (np.abs(gains) ** 2)
        # stations with no model power keep their current gain
        valid = denominator > 0
        new = gains.copy()
        new[valid] = numerator[valid] / denominator[valid]
        if iteration % 2 == 0:
            new = 0.5 * (new + previous)
        gains = new
        change = np.linalg.norm(gains - previous) / max(np.linalg.norm(gains), 1e-30)
        if change < tolerance:
            converged = True
            break
    gains = gains * np.exp(-1j * np.angle(gains[reference_station]))
    gains[~constrained] = 1.0
    if not constrained.all():
        converged = False
    return gains, iteration, converged, constrained


def stefcal(
    data: np.ndarray,
    model: np.ndarray,
    baselines: np.ndarray,
    n_stations: int,
    solution_interval: int = 0,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
    reference_station: int = 0,
) -> StefcalResult:
    """Estimate per-station scalar gains from (data, model) visibilities.

    Parameters
    ----------
    data, model:
        ``(n_baselines, n_times, n_channels, 2, 2)`` visibility sets; the
        diagonal (XX, YY) correlations feed the scalar solver.
    baselines:
        ``(n_baselines, 2)`` station pairs.
    n_stations:
        Number of stations (gain solutions).
    solution_interval:
        Timesteps per solution (0 = one solution for the whole set).
    max_iterations, tolerance:
        StEFCal stopping rule (relative gain change).
    reference_station:
        Station whose phase is fixed to zero.

    Returns
    -------
    :class:`StefcalResult`.
    """
    data = np.asarray(data)
    model = np.asarray(model)
    baselines = np.asarray(baselines)
    if data.shape != model.shape:
        raise ValueError(f"data shape {data.shape} != model shape {model.shape}")
    if data.ndim != 5 or data.shape[3:] != (2, 2):
        raise ValueError("expected (n_bl, n_times, n_channels, 2, 2) visibilities")
    n_bl, n_times = data.shape[:2]
    if baselines.shape != (n_bl, 2):
        raise ValueError(f"baselines must be ({n_bl}, 2)")
    if not (0 <= reference_station < n_stations):
        raise ValueError("reference_station out of range")
    if solution_interval < 0:
        raise ValueError("solution_interval must be >= 0")
    interval = solution_interval or n_times
    n_intervals = (n_times + interval - 1) // interval

    # scalar solver uses the parallel-hand correlations XX and YY
    diag_data = np.stack([data[..., 0, 0], data[..., 1, 1]], axis=-1)
    diag_model = np.stack([model[..., 0, 0], model[..., 1, 1]], axis=-1)

    gains = np.empty((n_intervals, n_stations), dtype=np.complex128)
    iterations = np.empty(n_intervals, dtype=np.int64)
    converged = np.empty(n_intervals, dtype=bool)
    constrained = np.empty((n_intervals, n_stations), dtype=bool)
    for k in range(n_intervals):
        t0, t1 = k * interval, min((k + 1) * interval, n_times)
        d = diag_data[:, t0:t1].reshape(n_bl, -1).astype(np.complex128)
        m = diag_model[:, t0:t1].reshape(n_bl, -1).astype(np.complex128)
        a, b = _accumulate_normal_matrices(d, m, baselines, n_stations)
        gains[k], iterations[k], converged[k], constrained[k] = _solve_interval(
            a, b, max_iterations, tolerance, reference_station
        )
    return StefcalResult(
        gains=gains,
        n_iterations=iterations,
        converged=converged,
        constrained=constrained,
    )
