"""Per-station complex gain application.

Direction-independent gains corrupt a visibility as
``V'_pq = g_p * V_pq * conj(g_q)`` (scalar gains applied to both
polarisation feeds equally; the diagonal-Jones generalisation multiplies
per-feed).  The same formula with inverted gains calibrates data.
"""

from __future__ import annotations

import numpy as np


def random_gains(
    n_stations: int,
    amplitude_rms: float = 0.1,
    phase_rms_rad: float = 0.5,
    seed: int = 0,
    reference_station: int = 0,
) -> np.ndarray:
    """Random scalar station gains ``(n_stations,)`` complex.

    Amplitudes are log-normal around 1; phases Gaussian around 0.  The
    reference station's phase is zeroed — gains are only determined up to a
    global phase, and fixing a reference makes solutions comparable.
    """
    if n_stations <= 0:
        raise ValueError("n_stations must be positive")
    rng = np.random.default_rng(seed)
    amplitude = np.exp(rng.normal(0.0, amplitude_rms, n_stations))
    phase = rng.normal(0.0, phase_rms_rad, n_stations)
    gains = amplitude * np.exp(1j * phase)
    gains *= np.exp(-1j * np.angle(gains[reference_station]))
    return gains


def corrupt_with_gains(
    visibilities: np.ndarray, gains: np.ndarray, baselines: np.ndarray
) -> np.ndarray:
    """Apply ``V'_pq = g_p V_pq conj(g_q)`` to a ``(..., 2, 2)`` set.

    ``visibilities`` has leading axes ``(n_baselines, ...)`` matching
    ``baselines``.
    """
    gains = np.asarray(gains)
    baselines = np.asarray(baselines)
    factor = gains[baselines[:, 0]] * np.conj(gains[baselines[:, 1]])
    extra = visibilities.ndim - 1
    return visibilities * factor.reshape((-1,) + (1,) * extra).astype(
        visibilities.dtype
    )


def apply_gains(
    visibilities: np.ndarray, gains: np.ndarray, baselines: np.ndarray
) -> np.ndarray:
    """Calibrate: divide out ``g_p ... conj(g_q)`` (inverse of corruption)."""
    gains = np.asarray(gains)
    if np.any(gains == 0):
        raise ValueError("cannot calibrate with zero gains")
    return corrupt_with_gains(visibilities, 1.0 / gains, baselines)
