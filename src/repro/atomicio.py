"""Crash-safe file writes shared by dataset, plan and checkpoint I/O.

A process dying mid-``np.savez_compressed`` leaves a truncated archive that
``np.load`` cannot open — fatal for anything meant to survive a crash
(datasets, execution plans, streaming checkpoints).  The helpers here write
to a temporary file *in the destination directory* (so the final rename
never crosses a filesystem) and publish it with ``os.replace``, which is
atomic on POSIX and Windows: readers see either the old complete file or
the new complete file, never a partial one.  Missing parent directories are
created instead of failing with a bare ``FileNotFoundError``.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from typing import Any

import numpy as np

__all__ = ["atomic_savez_compressed"]


def atomic_savez_compressed(
    path: str | pathlib.Path, **arrays: Any
) -> pathlib.Path:
    """``np.savez_compressed`` with write-to-temp-then-rename semantics.

    Mirrors numpy's name handling (a ``.npz`` suffix is appended when
    missing) and returns the path actually written.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp.npz"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
