"""Grid <-> image conversions with taper grid correction.

The gridding pipeline deposits each visibility onto the master grid with unit
weight (see :mod:`repro.core.subgrid_fft` for the normalisation); converting
a grid into a *dirty image* therefore requires

``I(l, m) = (G**2 / W) * IFFT(grid) / taper(l, m)``

where ``W`` is the total gridded weight and the division by the taper — the
*grid correction* — undoes the image-domain multiplication every subgrid
received.  The reverse direction pre-divides a model image by the taper
before the FFT so that degridding predicts uncorrupted visibilities.

Because a physical telescope measures only one of each conjugate visibility
pair, the half-plane dirty image is complex; for a real sky the physical
(real) dirty image is its real part — each measured visibility and its
implicit conjugate contribute complex-conjugate terms that average to
``Re``.  ``stokes_i_image`` applies that identity.
"""

from __future__ import annotations

import numpy as np

from repro.gridspec import GridSpec
from repro.kernels.fft import centered_fft2, centered_ifft2
from repro.kernels.spheroidal import grid_correction


def dirty_image_from_grid(
    grid: np.ndarray,
    gridspec: GridSpec,
    weight_sum: float,
    taper: str = "spheroidal",
    taper_beta: float = 9.0,
    correct_taper: bool = True,
) -> np.ndarray:
    """Dirty image from a gridded visibility set.

    Parameters
    ----------
    grid:
        ``(4, G, G)`` master grid (or any leading shape before the two pixel
        axes).
    weight_sum:
        Total weight gridded (for unit weights: the number of gridded
        visibilities); normalises the image to flux units.
    correct_taper:
        Apply the taper grid correction (disable to inspect the raw image).

    Returns
    -------
    Complex image array of ``grid``'s shape; see :func:`stokes_i_image` for
    the real Stokes-I reduction.
    """
    if weight_sum <= 0:
        raise ValueError("weight_sum must be positive")
    g = gridspec.grid_size
    image = centered_ifft2(grid, axes=(-2, -1)) * (g * g / weight_sum)
    if correct_taper:
        corr = grid_correction(g, taper=taper, beta=taper_beta)
        image = image / corr
    return image


def model_image_to_grid(
    model_image: np.ndarray,
    gridspec: GridSpec,
    taper: str = "spheroidal",
    taper_beta: float = 9.0,
) -> np.ndarray:
    """Prepare a model image for degridding: taper pre-correction + FFT.

    ``model_image`` is ``(..., G, G)`` (e.g. ``(4, G, G)`` per polarisation
    product).  Returns the model grid ready for :meth:`repro.core.IDG.degrid`.
    """
    g = gridspec.grid_size
    if model_image.shape[-1] != g or model_image.shape[-2] != g:
        raise ValueError(
            f"model image pixel axes {model_image.shape[-2:]} do not match grid size {g}"
        )
    corr = grid_correction(g, taper=taper, beta=taper_beta)
    pre = model_image / corr
    return centered_fft2(pre, axes=(-2, -1)).astype(np.complex64)


def stokes_i_image(image_4pol: np.ndarray) -> np.ndarray:
    """Stokes-I image from a 4-polarisation complex image.

    ``I = Re((XX + YY) / 2)`` for the ``B = I * eye`` brightness convention
    used throughout the tests.  Taking the real part implements the
    conjugate-visibility identity: for a real sky,
    ``Re(I_half) == I_hermitian`` — the image one would get by also gridding
    every visibility's implicit conjugate at ``(-u, -v, -w)`` and normalising
    by the doubled weight (the ``2`` from the conjugate pair and the ``1/2``
    from the doubled weight cancel).
    """
    if image_4pol.shape[0] != 4:
        raise ValueError("expected polarisation-major (4, ..., G, G) image")
    combined = 0.5 * (image_4pol[0] + image_4pol[3])
    return np.real(combined)


def stokes_images(image_4pol: np.ndarray) -> dict[str, np.ndarray]:
    """Full-Stokes images from a 4-polarisation complex image.

    For linear feeds and the correlation convention of
    :func:`repro.sky.model.brightness_from_stokes`
    (``B = 0.5 [[I+Q, U+iV], [U-iV, I-Q]]``):

    * ``I = Re(XX + YY)``  * ``Q = Re(XX - YY)``
    * ``U = Re(XY + YX)``  * ``V = Im(XY - YX)``

    (the factor 0.5 of the brightness convention cancels against the sum of
    the two correlations).  Taking real/imaginary parts applies the
    conjugate-visibility identity exactly as :func:`stokes_i_image` does.
    """
    if image_4pol.shape[0] != 4:
        raise ValueError("expected polarisation-major (4, ..., G, G) image")
    xx, xy, yx, yy = image_4pol
    return {
        "I": np.real(xx + yy),
        "Q": np.real(xx - yy),
        "U": np.real(xy + yx),
        "V": np.imag(xy - yx),
    }


def find_peak(image: np.ndarray) -> tuple[int, int, float]:
    """(row, col, value) of the absolute-maximum pixel of a real image."""
    idx = int(np.argmax(np.abs(image)))
    row, col = divmod(idx, image.shape[1])
    return row, col, float(image[row, col])
