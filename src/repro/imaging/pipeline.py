"""Pluggable invert/predict pipeline: 2-D, w-stacked, faceted imaging.

This is the repo's equivalent of ARL's ``ftprocessor``: a single
:class:`FTProcessor` contract — ``invert`` (visibilities → normalised image)
and ``predict`` (model image → visibilities) — with four interchangeable
implementations:

* :class:`TwoDimFTProcessor`      — plain IDG on the master grid
  (``invert_2d`` / ``predict_2d``);
* :class:`WStackFTProcessor`      — IDG under w-stacking
  (:func:`repro.core.wstack.split_plan_by_w` layers,
  ``invert_wstack`` / ``predict_wstack``);
* :class:`FacetsFTProcessor`      — phase-rotated facets, plain IDG per
  facet (``invert_facets`` / ``predict_facets``);
* :class:`WStackFacetsFTProcessor`— w-stacking inside every facet
  (``invert_wstack_facets`` / ``predict_wstack_facets``).

Every variant uses IDG as the inner gridder — through **any** of the four
executors (serial / threads / streaming / processes), selected on the
:class:`ImagingContext`.  Because all executors are bit-identical on
grids and predictions (the PR 8 conformance corpus pins this) and the
image-domain post-processing here is identical numpy code, a pipeline
result is ``np.array_equal`` across executors.

Normalisation contract: ``invert`` returns an :class:`InvertResult` whose
``image`` is the taper-corrected complex ``(4, G, G)`` dirty image in flux
units (``stokes_i`` reduces it); ``predict`` takes a ``(G, G)`` Stokes-I or
``(4, G, G)`` model and returns ``(n_bl, T, C, 2, 2)`` visibilities.
Weighted imaging passes Briggs/uniform weights from
:mod:`repro.imaging.weighting` straight into ``invert`` — the weights
multiply the visibilities and their (coverage-masked) sum normalises the
image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Final, Protocol

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.aterms.schedule import ATermSchedule
from repro.constants import ACCUM_DTYPE, COMPLEX_DTYPE
from repro.core.pipeline import IDG
from repro.core.plan import Plan
from repro.core.wstack import WLayer, split_plan_by_w
from repro.imaging.facets import (
    FacetScheme,
    Facet,
    embed_tile,
    extract_tile,
    facet_idg,
    facet_rotation_phasor,
    facet_shifted_uvw,
    plan_facets,
)
from repro.imaging.image import (
    dirty_image_from_grid,
    model_image_to_grid,
    stokes_i_image,
)
from repro.imaging.weighting import apply_weights
from repro.kernels.fft import centered_fft2, centered_ifft2
from repro.kernels.spheroidal import grid_correction
from repro.kernels.wkernel import n_term

__all__ = [
    "EXECUTORS",
    "FTProcessor",
    "FacetsFTProcessor",
    "ImagingContext",
    "InvertResult",
    "TwoDimFTProcessor",
    "WStackFTProcessor",
    "WStackFacetsFTProcessor",
    "invert_2d",
    "invert_facets",
    "invert_wstack",
    "invert_wstack_facets",
    "make_engine",
    "make_ftprocessor",
    "plan_coverage",
    "plan_weight_sum",
    "predict_2d",
    "predict_facets",
    "predict_wstack",
    "predict_wstack_facets",
]

#: Executor names an :class:`ImagingContext` accepts.
EXECUTORS = ("serial", "threads", "streaming", "processes")

#: Sentinel distinguishing "use the context's A-terms" from an explicit
#: ``None`` (identity) override on ``invert``/``predict``.
_UNSET: Any = object()


def make_engine(
    idg: IDG,
    executor: str = "serial",
    n_workers: int = 2,
    n_buffers: int = 3,
    start_method: str = "fork",
) -> Any:
    """Wrap an IDG facade in one of the four executors.

    All executors share the ``grid(plan, uvw, vis, aterms=..., flags=...)``
    / ``degrid(plan, uvw, grid, aterms=...)`` surface and produce
    bit-identical results, so callers can treat the return value as an
    opaque gridding engine.
    """
    if executor == "serial":
        return idg
    if executor == "threads":
        from repro.parallel.executor import ParallelIDG

        return ParallelIDG(idg, n_workers=n_workers)
    if executor == "streaming":
        from repro.runtime import RuntimeConfig, StreamingIDG

        return StreamingIDG(
            idg,
            RuntimeConfig(
                n_buffers=n_buffers,
                gridder_workers=n_workers,
                fft_workers=n_workers,
                degridder_workers=n_workers,
            ),
        )
    if executor == "processes":
        from repro.parallel.process import ProcessConfig, ProcessShardedIDG

        return ProcessShardedIDG(
            idg, ProcessConfig(n_procs=n_workers, start_method=start_method)
        )
    raise ValueError(
        f"executor must be one of {EXECUTORS}, got {executor!r}"
    )


@dataclass
class ImagingContext:
    """Everything the FT processors share for one observation.

    Attributes
    ----------
    idg:
        The configured IDG facade — its gridspec/config define the master
        grid geometry and inner-gridder parameters.
    uvw_m, frequencies_hz, baselines:
        The observation.
    aterms:
        Default A-term generator applied by ``invert``/``predict`` (both
        accept a per-call override).
    aterm_schedule:
        A-term update cadence baked into every plan (required whenever
        ``aterms`` vary per interval — e.g. gain solutions).
    executor:
        One of :data:`EXECUTORS`; how every inner grid/degrid executes.
    executor_workers, executor_buffers, start_method:
        Executor sizing knobs (ignored by ``serial``).
    """

    idg: IDG
    uvw_m: np.ndarray
    frequencies_hz: np.ndarray
    baselines: np.ndarray
    aterms: ATermGenerator | None = None
    aterm_schedule: ATermSchedule | None = None
    executor: str = "serial"
    executor_workers: int = 2
    executor_buffers: int = 3
    start_method: str = "fork"

    def __post_init__(self) -> None:
        self.uvw_m = np.asarray(self.uvw_m, dtype=np.float64)
        self.frequencies_hz = np.atleast_1d(
            np.asarray(self.frequencies_hz, dtype=np.float64)
        )
        self.baselines = np.asarray(self.baselines)
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )

    def engine(self, idg: IDG | None = None) -> Any:
        """An executor-wrapped gridding engine (for ``idg`` or the master)."""
        return make_engine(
            idg if idg is not None else self.idg,
            self.executor,
            n_workers=self.executor_workers,
            n_buffers=self.executor_buffers,
            start_method=self.start_method,
        )


@dataclass(frozen=True)
class InvertResult:
    """Normalised dirty image plus the weight that normalised it."""

    image: np.ndarray  # (4, G, G) complex, taper-corrected, flux units
    weight_sum: float

    @property
    def stokes_i(self) -> np.ndarray:
        """Real ``(G, G)`` Stokes-I reduction of ``image``."""
        return stokes_i_image(self.image)


# --------------------------------------------------------------- weighting


def plan_coverage(plan: Plan) -> np.ndarray:
    """``(n_bl, T, C)`` bool mask of samples the plan's work items grid."""
    out = np.zeros(plan.flagged.shape, dtype=bool)
    for item in plan:
        out[
            item.baseline,
            item.time_start : item.time_end,
            item.channel_start : item.channel_end,
        ] = True
    return out & ~plan.flagged


def plan_weight_sum(
    plan: Plan,
    weights: np.ndarray | None = None,
    flags: np.ndarray | None = None,
) -> float:
    """Total gridded weight of a plan under optional weights and flags.

    With unit weights and no flags this equals
    ``plan.statistics.n_visibilities_gridded``; otherwise the imaging
    weights are summed over exactly the samples the gridder will accept
    (covered by a work item, not plan-flagged, not caller-flagged).
    """
    if weights is None and flags is None:
        return float(plan.statistics.n_visibilities_gridded)
    covered = plan_coverage(plan)
    if flags is not None:
        covered &= ~np.asarray(flags, dtype=bool)
    if weights is None:
        return float(covered.sum())
    weights = np.asarray(weights)
    if weights.shape != covered.shape:
        raise ValueError(
            f"weights shape {weights.shape} != visibility layout {covered.shape}"
        )
    return float(weights[covered].sum())


def _as_model4(model_image: np.ndarray, grid_size: int) -> np.ndarray:
    """Lift a ``(G, G)`` Stokes-I model to the ``(4, G, G)`` XX=YY=I form
    (pass-through for an explicit 4-polarisation model)."""
    model_image = np.asarray(model_image)
    if model_image.shape == (4, grid_size, grid_size):
        return model_image.astype(ACCUM_DTYPE, copy=False)
    if model_image.shape != (grid_size, grid_size):
        raise ValueError(
            f"model image must be ({grid_size}, {grid_size}) Stokes I or "
            f"(4, {grid_size}, {grid_size}), got {model_image.shape}"
        )
    model4 = np.zeros((4, grid_size, grid_size), dtype=ACCUM_DTYPE)
    model4[0] = model_image  # XX = YY = I  (B = I * eye convention)
    model4[3] = model_image
    return model4


def _weighted(
    visibilities: np.ndarray, weights: np.ndarray | None
) -> np.ndarray:
    """Visibilities multiplied by imaging weights (identity when None)."""
    if weights is None:
        return visibilities
    return apply_weights(visibilities, np.asarray(weights))


# ------------------------------------------------------------ single field


class _Field:
    """One phase centre: a grid (master or facet) with optional w layers.

    This is the shared core all four processors are assembled from: the
    2-D variants use a layer-less field, the w-stack variants split the
    field's plan into :class:`~repro.core.wstack.WLayer` sub-plans; the
    facet variants run one field per tile on the facet grid.
    """

    def __init__(
        self,
        idg: IDG,
        engine: Any,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
        baselines: np.ndarray,
        aterm_schedule: ATermSchedule | None,
        n_w_planes: int,
    ):
        self.idg = idg
        self.engine = engine
        self.uvw_m = uvw_m
        self.plan = idg.make_plan(
            uvw_m, frequencies_hz, baselines, aterm_schedule=aterm_schedule
        )
        self.layers: list[WLayer] | None = (
            None
            if n_w_planes <= 1
            else split_plan_by_w(self.plan, uvw_m, n_w_planes)
        )

    # -- helpers (hoisted out of the layer loops: IDG002/IDG003 style) -----

    def _w_screen(self, w: float, sign: float) -> np.ndarray:
        """Image-domain w correction on this field's raster."""
        gs = self.idg.gridspec
        g = gs.grid_size
        coords = (np.arange(g) - g // 2) * (gs.image_size / g)
        n = n_term(coords[np.newaxis, :], coords[:, np.newaxis])
        return np.exp(sign * 2.0j * np.pi * w * n)

    def _grid_correction(self) -> np.ndarray:
        return grid_correction(
            self.idg.gridspec.grid_size,
            taper=self.idg.config.taper,
            beta=self.idg.config.taper_beta,
        )

    def _layer_image(
        self,
        layer: WLayer,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None,
        flags: np.ndarray | None,
    ) -> np.ndarray:
        """One layer's raw (unnormalised) w-corrected image."""
        g = self.idg.gridspec.grid_size
        grid = self.engine.grid(
            layer.plan, self.uvw_m, visibilities, aterms=aterms, flags=flags
        )
        image = centered_ifft2(grid, axes=(-2, -1)) * (g * g)
        return image * self._w_screen(layer.w_centre, sign=+1.0)

    def _layer_predict(
        self,
        layer: WLayer,
        pre_corrected: np.ndarray,
        aterms: ATermGenerator | None,
    ) -> np.ndarray:
        """One layer's predicted visibilities (disjoint blocks per layer)."""
        screened = pre_corrected * self._w_screen(layer.w_centre, sign=-1.0)
        grid = centered_fft2(screened, axes=(-2, -1)).astype(COMPLEX_DTYPE)
        return self.engine.degrid(layer.plan, self.uvw_m, grid, aterms=aterms)

    # -- the two directions ------------------------------------------------

    def weight_sum(
        self, weights: np.ndarray | None, flags: np.ndarray | None
    ) -> float:
        return plan_weight_sum(self.plan, weights, flags)

    def invert(
        self,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None,
        flags: np.ndarray | None,
        weight_sum: float,
    ) -> np.ndarray:
        """Normalised, taper-corrected ``(4, g, g)`` image of this field."""
        if weight_sum <= 0:
            raise ValueError(
                "weight_sum must be positive — no unflagged visibility was "
                "covered by the plan (or the imaging weights sum to zero)"
            )
        if self.layers is None:
            grid = self.engine.grid(
                self.plan, self.uvw_m, visibilities, aterms=aterms, flags=flags
            )
            return dirty_image_from_grid(
                grid,
                self.idg.gridspec,
                weight_sum=weight_sum,
                taper=self.idg.config.taper,
                taper_beta=self.idg.config.taper_beta,
            )
        g = self.idg.gridspec.grid_size
        accum = np.zeros((4, g, g), dtype=ACCUM_DTYPE)
        for layer in self.layers:
            accum += self._layer_image(layer, visibilities, aterms, flags)
        accum /= weight_sum
        return accum / self._grid_correction()

    def predict(
        self, model4: np.ndarray, aterms: ATermGenerator | None
    ) -> np.ndarray:
        """Predicted ``(n_bl, T, C, 2, 2)`` visibilities of a ``(4, g, g)``
        model on this field's raster."""
        if self.layers is None:
            grid = model_image_to_grid(
                model4,
                self.idg.gridspec,
                taper=self.idg.config.taper,
                taper_beta=self.idg.config.taper_beta,
            )
            return self.engine.degrid(self.plan, self.uvw_m, grid, aterms=aterms)
        pre = model4 / self._grid_correction()
        n_bl, n_times, _ = self.uvw_m.shape
        out = np.zeros(
            (n_bl, n_times, self.plan.n_channels, 2, 2), dtype=COMPLEX_DTYPE
        )
        for layer in self.layers:
            out += self._layer_predict(layer, pre, aterms)  # disjoint blocks
        return out


# -------------------------------------------------------------- processors


class FTProcessor(Protocol):
    """The invert/predict contract every processor implements."""

    def invert(
        self,
        visibilities: np.ndarray,
        weights: np.ndarray | None = None,
        flags: np.ndarray | None = None,
        aterms: ATermGenerator | None = _UNSET,
    ) -> InvertResult: ...

    def predict(
        self,
        model_image: np.ndarray,
        aterms: ATermGenerator | None = _UNSET,
    ) -> np.ndarray: ...


class _SingleFieldProcessor:
    """Shared implementation of the un-faceted processors."""

    def __init__(self, ctx: ImagingContext, n_w_planes: int):
        self.ctx = ctx
        self._field = _Field(
            ctx.idg,
            ctx.engine(),
            ctx.uvw_m,
            ctx.frequencies_hz,
            ctx.baselines,
            ctx.aterm_schedule,
            n_w_planes,
        )

    @property
    def plan(self) -> Plan:
        """The master-grid execution plan (shape/weight bookkeeping)."""
        return self._field.plan

    def _aterms(self, override: ATermGenerator | None) -> ATermGenerator | None:
        return self.ctx.aterms if override is _UNSET else override

    def invert(
        self,
        visibilities: np.ndarray,
        weights: np.ndarray | None = None,
        flags: np.ndarray | None = None,
        aterms: ATermGenerator | None = _UNSET,
    ) -> InvertResult:
        weight_sum = self._field.weight_sum(weights, flags)
        image = self._field.invert(
            _weighted(visibilities, weights), self._aterms(aterms), flags, weight_sum
        )
        return InvertResult(image=image, weight_sum=weight_sum)

    def predict(
        self,
        model_image: np.ndarray,
        aterms: ATermGenerator | None = _UNSET,
    ) -> np.ndarray:
        model4 = _as_model4(model_image, self.ctx.idg.gridspec.grid_size)
        return self._field.predict(model4, self._aterms(aterms))


class TwoDimFTProcessor(_SingleFieldProcessor):
    """Plain IDG on the master grid (w handled exactly per subgrid)."""

    kind = "2d"

    def __init__(self, ctx: ImagingContext):
        super().__init__(ctx, n_w_planes=1)


class WStackFTProcessor(_SingleFieldProcessor):
    """IDG + w-stacking on the master grid (paper Section IV)."""

    kind = "wstack"

    def __init__(self, ctx: ImagingContext, n_w_planes: int = 4):
        if n_w_planes <= 0:
            raise ValueError("n_w_planes must be positive")
        # n_w_planes == 1 degenerates to a single mean-w layer, which is
        # plain IDG up to a constant w shift the screen exactly undoes —
        # keep the layered path so the variant stays honest about its math.
        super().__init__(ctx, n_w_planes=max(n_w_planes, 2))
        self.n_w_planes = n_w_planes


class _FacetedProcessor:
    """Shared implementation of the faceted processors.

    All facets share the facet grid geometry and executor engine (same
    pixel scale, same uv extent), but each facet grids with its own
    :func:`~repro.imaging.facets.facet_shifted_uvw` coordinates — the
    per-facet (u, v) shift that absorbs the first-order tangent-plane w
    error — and therefore builds its own plan.
    """

    def __init__(
        self,
        ctx: ImagingContext,
        n_facets: int,
        n_w_planes: int,
        padding: float,
    ):
        self.ctx = ctx
        self.scheme: FacetScheme = plan_facets(
            ctx.idg.gridspec, n_facets, padding=padding
        )
        self._idg_f = facet_idg(ctx.idg, self.scheme)
        engine = ctx.engine(self._idg_f)
        self._fields = [
            _Field(
                self._idg_f,
                engine,
                facet_shifted_uvw(ctx.uvw_m, facet),
                ctx.frequencies_hz,
                ctx.baselines,
                ctx.aterm_schedule,
                n_w_planes,
            )
            for facet in self.scheme.facets
        ]

    @property
    def plan(self) -> Plan:
        """The first facet's execution plan (shape/weight bookkeeping; all
        facets share the visibility layout)."""
        return self._fields[0].plan

    def _aterms(self, override: ATermGenerator | None) -> ATermGenerator | None:
        return self.ctx.aterms if override is _UNSET else override

    # -- per-facet helpers (loop bodies live here, not in the loop) --------

    def _rotate(self, visibilities: np.ndarray, facet: Facet, sign: float) -> np.ndarray:
        """Phase-rotate a visibility set to (+1) / from (-1) a facet centre."""
        phasor = facet_rotation_phasor(
            self.ctx.uvw_m, self.ctx.frequencies_hz, facet.l0, facet.m0, sign
        )
        return (visibilities * phasor[..., np.newaxis, np.newaxis]).astype(
            COMPLEX_DTYPE
        )

    def _facet_invert_into(
        self,
        mosaic: np.ndarray,
        index: int,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None,
        flags: np.ndarray | None,
        weights: np.ndarray | None,
    ) -> None:
        """Image one facet and place its central tile into the mosaic."""
        facet = self.scheme.facets[index]
        field = self._fields[index]
        rotated = self._rotate(visibilities, facet, sign=+1.0)
        weight_sum = field.weight_sum(weights, flags)
        image = field.invert(rotated, aterms, flags, weight_sum)
        tile = extract_tile(image, self.scheme, facet)
        t = self.scheme.tile_size
        mosaic[
            :, facet.row0 : facet.row0 + t, facet.col0 : facet.col0 + t
        ] = tile

    def _facet_predict(
        self,
        model4: np.ndarray,
        index: int,
        aterms: ATermGenerator | None,
    ) -> np.ndarray:
        """One facet's (de-rotated) contribution to the predicted set."""
        facet = self.scheme.facets[index]
        facet_model = embed_tile(model4, self.scheme, facet)
        predicted = self._fields[index].predict(facet_model, aterms)
        return self._rotate(predicted, facet, sign=-1.0)

    # -- the two directions ------------------------------------------------

    def invert(
        self,
        visibilities: np.ndarray,
        weights: np.ndarray | None = None,
        flags: np.ndarray | None = None,
        aterms: ATermGenerator | None = _UNSET,
    ) -> InvertResult:
        weighted = _weighted(visibilities, weights)
        aterms_ = self._aterms(aterms)
        g = self.scheme.master.grid_size
        mosaic = np.zeros((4, g, g), dtype=ACCUM_DTYPE)
        # each facet normalises by its own gridded weight (the uv shift can
        # move samples on/off the grid edge per facet)
        for index in range(len(self.scheme.facets)):
            self._facet_invert_into(
                mosaic, index, weighted, aterms_, flags, weights
            )
        return InvertResult(
            image=mosaic,
            weight_sum=self._fields[0].weight_sum(weights, flags),
        )

    def predict(
        self,
        model_image: np.ndarray,
        aterms: ATermGenerator | None = _UNSET,
    ) -> np.ndarray:
        model4 = _as_model4(model_image, self.scheme.master.grid_size)
        aterms_ = self._aterms(aterms)
        n_bl, n_times, _ = self.ctx.uvw_m.shape
        out = np.zeros(
            (n_bl, n_times, self.ctx.frequencies_hz.size, 2, 2),
            dtype=COMPLEX_DTYPE,
        )
        # every sky component lives in exactly one facet's tile, so the
        # per-facet predictions add to the full-model prediction.
        for index in range(len(self.scheme.facets)):
            out += self._facet_predict(model4, index, aterms_)
        return out


class FacetsFTProcessor(_FacetedProcessor):
    """Phase-rotated facets, plain IDG inside each (exact per-subgrid w)."""

    kind = "facets"

    def __init__(self, ctx: ImagingContext, n_facets: int = 2, padding: float = 1.5):
        super().__init__(ctx, n_facets, n_w_planes=1, padding=padding)


class WStackFacetsFTProcessor(_FacetedProcessor):
    """W-stacking inside every phase-rotated facet — the full wide-field
    decomposition (w planes x facets)."""

    kind = "wstack_facets"

    def __init__(
        self,
        ctx: ImagingContext,
        n_facets: int = 2,
        n_w_planes: int = 4,
        padding: float = 1.5,
    ):
        if n_w_planes <= 0:
            raise ValueError("n_w_planes must be positive")
        super().__init__(
            ctx, n_facets, n_w_planes=max(n_w_planes, 2), padding=padding
        )
        self.n_w_planes = n_w_planes


_PROCESSORS: Final = {
    "2d": TwoDimFTProcessor,
    "wstack": WStackFTProcessor,
    "facets": FacetsFTProcessor,
    "wstack_facets": WStackFacetsFTProcessor,
}


def make_ftprocessor(ctx: ImagingContext, kind: str = "2d", **options: Any) -> FTProcessor:
    """Build a processor by name (``2d``/``wstack``/``facets``/
    ``wstack_facets``); ``options`` forward to the constructor
    (``n_w_planes``, ``n_facets``, ``padding``)."""
    try:
        cls = _PROCESSORS[kind]
    except KeyError:
        raise ValueError(
            f"kind must be one of {sorted(_PROCESSORS)}, got {kind!r}"
        ) from None
    return cls(ctx, **options)


# ------------------------------------------------- functional conveniences


def invert_2d(ctx: ImagingContext, visibilities: np.ndarray, **kw: Any) -> InvertResult:
    """One-shot plain-IDG invert (see :class:`TwoDimFTProcessor`)."""
    return TwoDimFTProcessor(ctx).invert(visibilities, **kw)


def predict_2d(ctx: ImagingContext, model_image: np.ndarray, **kw: Any) -> np.ndarray:
    """One-shot plain-IDG predict."""
    return TwoDimFTProcessor(ctx).predict(model_image, **kw)


def invert_wstack(
    ctx: ImagingContext,
    visibilities: np.ndarray,
    n_w_planes: int = 4,
    **kw: Any,
) -> InvertResult:
    """One-shot w-stacked invert."""
    return WStackFTProcessor(ctx, n_w_planes=n_w_planes).invert(visibilities, **kw)


def predict_wstack(
    ctx: ImagingContext,
    model_image: np.ndarray,
    n_w_planes: int = 4,
    **kw: Any,
) -> np.ndarray:
    """One-shot w-stacked predict."""
    return WStackFTProcessor(ctx, n_w_planes=n_w_planes).predict(model_image, **kw)


def invert_facets(
    ctx: ImagingContext,
    visibilities: np.ndarray,
    n_facets: int = 2,
    padding: float = 1.5,
    **kw: Any,
) -> InvertResult:
    """One-shot faceted invert."""
    return FacetsFTProcessor(ctx, n_facets=n_facets, padding=padding).invert(
        visibilities, **kw
    )


def predict_facets(
    ctx: ImagingContext,
    model_image: np.ndarray,
    n_facets: int = 2,
    padding: float = 1.5,
    **kw: Any,
) -> np.ndarray:
    """One-shot faceted predict."""
    return FacetsFTProcessor(ctx, n_facets=n_facets, padding=padding).predict(
        model_image, **kw
    )


def invert_wstack_facets(
    ctx: ImagingContext,
    visibilities: np.ndarray,
    n_facets: int = 2,
    n_w_planes: int = 4,
    padding: float = 1.5,
    **kw: Any,
) -> InvertResult:
    """One-shot w-planes x facets invert."""
    return WStackFacetsFTProcessor(
        ctx, n_facets=n_facets, n_w_planes=n_w_planes, padding=padding
    ).invert(visibilities, **kw)


def predict_wstack_facets(
    ctx: ImagingContext,
    model_image: np.ndarray,
    n_facets: int = 2,
    n_w_planes: int = 4,
    padding: float = 1.5,
    **kw: Any,
) -> np.ndarray:
    """One-shot w-planes x facets predict."""
    return WStackFacetsFTProcessor(
        ctx, n_facets=n_facets, n_w_planes=n_w_planes, padding=padding
    ).predict(model_image, **kw)
