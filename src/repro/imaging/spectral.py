"""Multi-subband imaging (the outer loop of the paper's Fig 2).

The imaging step "for a single subband" (Fig 2's caption) runs once per
subband; wide-band imaging combines them.  This module provides:

* :func:`make_subbands` — split a wide band into the per-subband
  :class:`~repro.telescope.observation.Observation` objects the paper's
  pipeline iterates over;
* :class:`SpectralImager` — grids every subband with its own plan (the uv
  coordinates scale with frequency, so plans differ) and combines the
  per-subband dirty images by weighted mean: multi-frequency synthesis at
  the image level;
* :func:`fit_spectral_index` — per-pixel power-law fit across subband
  images, the first-order wide-band science product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.core.pipeline import IDG
from repro.imaging.image import dirty_image_from_grid, stokes_i_image
from repro.imaging.pipeline import (
    ImagingContext,
    make_ftprocessor,
    plan_weight_sum,
)
from repro.imaging.weighting import apply_weights
from repro.telescope.observation import Observation, subband_frequencies


def make_subbands(
    base: Observation,
    n_subbands: int,
    subband_width_hz: float | None = None,
) -> list[Observation]:
    """Split an observation's band into contiguous subbands.

    Each subband keeps the base observation's array, time sampling and
    channel count; its channels start where the previous subband ends.
    """
    if n_subbands <= 0:
        raise ValueError("n_subbands must be positive")
    channel_width = (
        float(np.diff(base.frequencies_hz).mean())
        if base.n_channels > 1
        else 200e3
    )
    if subband_width_hz is None:
        subband_width_hz = base.n_channels * channel_width
    out = []
    for k in range(n_subbands):
        start = base.frequencies_hz[0] + k * subband_width_hz
        freqs = subband_frequencies(start, base.n_channels, channel_width)
        out.append(
            Observation(
                array=base.array,
                n_times=base.n_times,
                integration_time_s=base.integration_time_s,
                frequencies_hz=freqs,
                declination_rad=base.declination_rad,
                hour_angle_start_rad=base.hour_angle_start_rad,
            )
        )
    return out


@dataclass
class SubbandImage:
    """One subband's imaging product."""

    frequency_hz: float
    image: np.ndarray
    weight: float


class SpectralImager:
    """Images a list of subbands with IDG and combines them.

    All subbands share the IDG instance's grid geometry (the field of view
    is fixed; uv *pixel* coordinates differ per subband because they scale
    with frequency, which each subband's own plan accounts for).

    ``kind`` selects an :class:`~repro.imaging.pipeline.FTProcessor` variant
    for the per-subband inverts (``"wstack"``, ``"facets"``, ...), with
    ``ft_options`` forwarded to its constructor; ``None`` keeps the direct
    plain-IDG gridding path.  Both paths take per-visibility imaging weights
    (e.g. Briggs from :mod:`repro.imaging.weighting`) — weighted wide-band
    imaging is the composition of the two modules.
    """

    def __init__(self, idg: IDG, kind: str | None = None, **ft_options: Any):
        self.idg = idg
        self.kind = kind
        self.ft_options = ft_options

    def image_subband(
        self,
        observation: Observation,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None = None,
        weights: np.ndarray | None = None,
    ) -> SubbandImage:
        """Dirty Stokes-I image of one subband."""
        baselines = observation.array.baselines()
        frequency = float(observation.frequencies_hz.mean())
        if self.kind is not None:
            context = ImagingContext(
                idg=self.idg,
                uvw_m=observation.uvw_m,
                frequencies_hz=observation.frequencies_hz,
                baselines=baselines,
                aterms=aterms,
            )
            processor = make_ftprocessor(
                context, kind=self.kind, **self.ft_options
            )
            result = processor.invert(visibilities, weights=weights)
            return SubbandImage(
                frequency_hz=frequency,
                image=result.stokes_i,
                weight=result.weight_sum,
            )
        plan = self.idg.make_plan(
            observation.uvw_m, observation.frequencies_hz, baselines
        )
        if weights is not None:
            visibilities = apply_weights(visibilities, np.asarray(weights))
            weight = plan_weight_sum(plan, weights)
        else:
            weight = float(plan.statistics.n_visibilities_gridded)
        grid = self.idg.grid(plan, observation.uvw_m, visibilities, aterms=aterms)
        image = stokes_i_image(
            dirty_image_from_grid(
                grid, self.idg.gridspec, weight_sum=weight,
                taper=self.idg.config.taper, taper_beta=self.idg.config.taper_beta,
            )
        )
        return SubbandImage(
            frequency_hz=frequency,
            image=image,
            weight=weight,
        )

    def mfs_image(self, subband_images: list[SubbandImage]) -> np.ndarray:
        """Weighted mean of the subband images (image-plane MFS)."""
        if not subband_images:
            raise ValueError("no subband images to combine")
        total_weight = sum(s.weight for s in subband_images)
        if total_weight <= 0:
            raise ValueError("subband weights must be positive")
        return sum(s.weight * s.image for s in subband_images) / total_weight


def fit_spectral_index(
    subband_images: list[SubbandImage],
    threshold: float,
) -> np.ndarray:
    """Per-pixel spectral index ``alpha`` with ``I(nu) ~ nu**alpha``.

    A least-squares line fit of ``log I`` against ``log nu`` per pixel;
    pixels whose flux drops below ``threshold`` in any subband get NaN
    (the fit is meaningless in the noise).
    """
    if len(subband_images) < 2:
        raise ValueError("need at least two subbands to fit a spectral index")
    freqs = np.array([s.frequency_hz for s in subband_images])
    cube = np.stack([s.image for s in subband_images])  # (S, G, G)
    valid = np.all(cube > threshold, axis=0)
    log_nu = np.log(freqs)
    log_nu = log_nu - log_nu.mean()
    denominator = (log_nu**2).sum()
    with np.errstate(invalid="ignore", divide="ignore"):
        log_flux = np.where(cube > 0, np.log(np.where(cube > 0, cube, 1.0)), 0.0)
        alpha = np.tensordot(log_nu, log_flux, axes=(0, 0)) / denominator
    alpha[~valid] = np.nan
    return alpha
