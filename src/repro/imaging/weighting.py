"""Visibility weighting schemes.

Imaging weights trade sensitivity against PSF shape: *natural* weighting
(unit weight per visibility) maximises sensitivity but gives the dense core
of the uv distribution (paper Fig 8) a heavy PSF; *uniform* weighting divides
by the local uv sample density to flatten the PSF.  Weights multiply the
visibilities before gridding and their sum normalises the dirty image.

Density-based schemes accept an optional ``flags`` mask: flagged samples are
excluded from the per-cell counts (so they cannot skew the weights of live
visibilities sharing their cell) and receive weight zero themselves.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.gridspec import GridSpec


class WeightingError(ValueError):
    """No usable sample for a density-based weighting scheme.

    Raised by :func:`briggs_weights` when no unflagged visibility lands on
    the uv grid — the mean cell occupancy is then 0/0 and the robust scale
    ``f^2`` undefined, so the caller gets a typed error instead of an array
    of NaNs silently propagating into the imager.
    """


def natural_weights(uvw_m: np.ndarray, n_channels: int) -> np.ndarray:
    """Unit weight per (baseline, time, channel) visibility."""
    n_bl, n_times, _ = uvw_m.shape
    return np.ones((n_bl, n_times, n_channels), dtype=np.float64)


def _grid_occupancy(
    uvw_m: np.ndarray,
    frequencies_hz: np.ndarray,
    gridspec: GridSpec,
    flags: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-visibility cell indices, live-and-on-grid mask, and cell counts.

    Returns ``(iu, iv, live, counts)`` with ``iu``/``iv`` the nearest-cell
    pixel coordinates of every (baseline, time, channel) sample, ``live``
    True where the sample is on-grid *and* unflagged, and ``counts`` the
    ``(G, G)`` occupancy histogram of the live samples.
    """
    frequencies_hz = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
    scale = frequencies_hz / SPEED_OF_LIGHT
    g = gridspec.grid_size
    # (n_bl, T, C) pixel coordinates
    pu = uvw_m[:, :, 0, np.newaxis] * scale * gridspec.image_size + g // 2
    pv = uvw_m[:, :, 1, np.newaxis] * scale * gridspec.image_size + g // 2
    iu = np.rint(pu).astype(np.int64)
    iv = np.rint(pv).astype(np.int64)
    live = (iu >= 0) & (iu < g) & (iv >= 0) & (iv < g)
    if flags is not None:
        flags = np.asarray(flags, dtype=bool)
        if flags.shape != live.shape:
            raise ValueError(
                f"flags shape {flags.shape} does not match visibility "
                f"layout {live.shape}"
            )
        live &= ~flags

    counts = np.zeros((g, g), dtype=np.float64)
    np.add.at(counts, (iv[live], iu[live]), 1.0)
    return iu, iv, live, counts


def uniform_weights(
    uvw_m: np.ndarray,
    frequencies_hz: np.ndarray,
    gridspec: GridSpec,
    flags: np.ndarray | None = None,
) -> np.ndarray:
    """Uniform (density-inverse) weights.

    Counts visibilities per uv cell (nearest-cell binning over all baselines,
    times and channels) and assigns each visibility the reciprocal of its
    cell's count.  Off-grid and flagged samples get weight zero and do not
    contribute to the counts.
    """
    iu, iv, live, counts = _grid_occupancy(uvw_m, frequencies_hz, gridspec, flags)
    weights = np.zeros(live.shape, dtype=np.float64)
    weights[live] = 1.0 / counts[iv[live], iu[live]]
    return weights


def briggs_weights(
    uvw_m: np.ndarray,
    frequencies_hz: np.ndarray,
    gridspec: GridSpec,
    robust: float = 0.0,
    flags: np.ndarray | None = None,
) -> np.ndarray:
    """Briggs (robust) weighting: the natural/uniform continuum.

    Implements the standard robust formula: with per-cell counts ``N_k`` and
    mean cell occupancy ``<N>``, each visibility in cell k gets

    ``w = 1 / (1 + N_k * f^2)``,  ``f^2 = (5 * 10^-robust)^2 / <N>``

    so ``robust = +2`` approaches natural weighting and ``robust = -2``
    approaches uniform.  Off-grid and flagged samples get weight zero and do
    not contribute to the counts.

    Raises
    ------
    WeightingError
        When no unflagged visibility lands on the grid (the mean occupancy
        would be 0/0).
    """
    iu, iv, live, counts = _grid_occupancy(uvw_m, frequencies_hz, gridspec, flags)
    occupied = counts[counts > 0]
    if occupied.size == 0:
        raise WeightingError(
            "briggs_weights: no unflagged visibility lands on the uv grid "
            "(cannot form the mean cell occupancy)"
        )
    # mean weighted cell occupancy: sum(N^2) / sum(N), the Briggs definition
    mean_occupancy = float((occupied**2).sum() / occupied.sum())
    f2 = (5.0 * 10.0 ** (-robust)) ** 2 / mean_occupancy

    weights = np.zeros(live.shape, dtype=np.float64)
    weights[live] = 1.0 / (1.0 + counts[iv[live], iu[live]] * f2)
    return weights


def apply_weights(visibilities: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Multiply a ``(..., 2, 2)`` visibility set by per-visibility weights."""
    if weights.shape != visibilities.shape[:-2]:
        raise ValueError(
            f"weights shape {weights.shape} does not match visibilities "
            f"{visibilities.shape[:-2]}"
        )
    return visibilities * weights[..., np.newaxis, np.newaxis].astype(visibilities.real.dtype)
