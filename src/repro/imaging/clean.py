"""Hogbom CLEAN deconvolution.

The imaging cycle (paper Fig 2) extracts bright sources from the dirty image
with "a variant of the CLEAN algorithm".  Hogbom's classic variant iterates:
find the absolute peak of the residual image, subtract ``gain * peak`` times
the PSF centred there, and record the subtracted flux as a *CLEAN component*.
Components accumulate into the sky model that the predict step (FFT +
degridding) turns back into visibilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CleanResult:
    """Outcome of a CLEAN run.

    Attributes
    ----------
    components:
        ``(n_components, 3)`` array of (row, col, flux).
    model_image:
        Component image (same shape as the input dirty image).
    residual:
        Residual dirty image after subtraction.
    n_iterations:
        Number of minor-cycle iterations performed.
    converged:
        True if the stop threshold was reached before the iteration cap.
    """

    components: np.ndarray
    model_image: np.ndarray
    residual: np.ndarray
    n_iterations: int
    converged: bool

    def component_flux(self) -> float:
        """Total CLEANed flux."""
        return float(self.components[:, 2].sum()) if len(self.components) else 0.0


def hogbom_clean(
    dirty: np.ndarray,
    psf: np.ndarray,
    gain: float = 0.1,
    threshold: float = 0.0,
    max_iterations: int = 1000,
    window: np.ndarray | None = None,
) -> CleanResult:
    """Hogbom CLEAN of a real dirty image.

    Parameters
    ----------
    dirty:
        ``(G, G)`` real dirty image.
    psf:
        ``(G, G)`` point spread function with its peak at the image centre
        ``(G//2, G//2)``, normalised to peak 1.
    gain:
        Loop gain (fraction of the peak removed per iteration).
    threshold:
        Stop when the residual peak drops below this absolute value.
    max_iterations:
        Minor-cycle cap.
    window:
        Optional boolean mask restricting where peaks may be found.

    Returns
    -------
    :class:`CleanResult`.
    """
    if dirty.ndim != 2 or dirty.shape[0] != dirty.shape[1]:
        raise ValueError("dirty image must be square 2-D")
    if psf.shape != dirty.shape:
        raise ValueError("psf must match the dirty image shape")
    if not (0.0 < gain <= 1.0):
        raise ValueError("gain must be in (0, 1]")
    g = dirty.shape[0]
    centre = g // 2
    peak_psf = psf[centre, centre]
    if not np.isclose(peak_psf, 1.0, atol=1e-3):
        raise ValueError(f"psf peak at centre must be ~1, got {peak_psf}")

    residual = dirty.astype(np.float64).copy()
    model = np.zeros_like(residual)
    comps: list[tuple[int, int, float]] = []
    search = np.abs(residual) if window is None else np.where(window, np.abs(residual), -np.inf)

    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        idx = int(np.argmax(search))
        row, col = divmod(idx, g)
        peak = residual[row, col]
        if abs(peak) <= threshold:
            converged = True
            iteration -= 1
            break
        flux = gain * peak

        # Subtract the shifted PSF; clip the overlap windows at the edges.
        r0, r1 = row - centre, row - centre + g
        c0, c1 = col - centre, col - centre + g
        pr0, pr1 = max(0, -r0), g - max(0, r1 - g)
        pc0, pc1 = max(0, -c0), g - max(0, c1 - g)
        rr0, rr1 = max(0, r0), min(g, r1)
        cc0, cc1 = max(0, c0), min(g, c1)
        residual[rr0:rr1, cc0:cc1] -= flux * psf[pr0:pr1, pc0:pc1]

        model[row, col] += flux
        comps.append((row, col, flux))
        if window is None:
            search = np.abs(residual)
        else:
            search = np.where(window, np.abs(residual), -np.inf)
    else:
        converged = abs(residual).max() <= threshold if threshold > 0 else False

    components = (
        np.array(comps, dtype=np.float64) if comps else np.empty((0, 3), dtype=np.float64)
    )
    return CleanResult(
        components=components,
        model_image=model,
        residual=residual,
        n_iterations=iteration,
        converged=converged,
    )
