"""Image-quality metrics.

Standard figures of merit used by the integration tests, ablation
benchmarks and examples: residual rms, dynamic range, PSF beam fit (second
moments of the main lobe) and model fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def image_rms(image: np.ndarray, exclude_box: tuple[int, int, int] | None = None) -> float:
    """RMS of a real image; optionally excluding a ``(row, col, half)`` box
    (e.g. around a bright source, to measure the noise floor)."""
    data = np.asarray(image, dtype=np.float64)
    if exclude_box is not None:
        row, col, half = exclude_box
        mask = np.ones_like(data, dtype=bool)
        mask[max(0, row - half) : row + half + 1, max(0, col - half) : col + half + 1] = False
        data = data[mask]
    return float(np.sqrt((data**2).mean()))


def dynamic_range(image: np.ndarray, peak_half_width: int = 5) -> float:
    """Peak / off-source rms — the standard deconvolution quality metric."""
    image = np.asarray(image, dtype=np.float64)
    idx = int(np.argmax(np.abs(image)))
    row, col = divmod(idx, image.shape[1])
    peak = abs(float(image[row, col]))
    noise = image_rms(image, exclude_box=(row, col, peak_half_width))
    if noise == 0:
        return float("inf")
    return peak / noise


@dataclass(frozen=True)
class BeamFit:
    """Gaussian-equivalent fit of a PSF main lobe.

    Attributes
    ----------
    fwhm_major_px, fwhm_minor_px:
        Full widths at half maximum along the principal axes, in pixels.
    position_angle_rad:
        Orientation of the major axis (from the +x axis).
    """

    fwhm_major_px: float
    fwhm_minor_px: float
    position_angle_rad: float

    @property
    def area_px(self) -> float:
        """Beam solid angle in pixels (Gaussian-equivalent)."""
        return np.pi * self.fwhm_major_px * self.fwhm_minor_px / (4 * np.log(2))


def fit_beam(psf: np.ndarray, threshold: float = 0.5) -> BeamFit:
    """Second-moment fit of the PSF main lobe.

    Uses the pixels of the connected region above ``threshold`` around the
    peak (assumed at the image centre) and converts the intensity-weighted
    covariance into Gaussian FWHMs — robust for moderately sampled beams.
    """
    psf = np.asarray(psf, dtype=np.float64)
    g = psf.shape[0]
    centre = g // 2
    if not np.isclose(psf[centre, centre], np.abs(psf).max(), rtol=1e-3):
        raise ValueError("psf peak must be at the image centre")

    # flood out from the centre over pixels above threshold (grid BFS)
    above = psf >= threshold * psf[centre, centre]
    selected = np.zeros_like(above)
    stack = [(centre, centre)]
    selected[centre, centre] = True
    while stack:
        r, c = stack.pop()
        for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            rr, cc = r + dr, c + dc
            if 0 <= rr < g and 0 <= cc < g and above[rr, cc] and not selected[rr, cc]:
                selected[rr, cc] = True
                stack.append((rr, cc))

    rows, cols = np.nonzero(selected)
    weights = psf[rows, cols]
    weights = weights / weights.sum()
    dy = rows - centre
    dx = cols - centre
    cov = np.array(
        [
            [np.sum(weights * dx * dx), np.sum(weights * dx * dy)],
            [np.sum(weights * dx * dy), np.sum(weights * dy * dy)],
        ]
    )
    evals, evecs = np.linalg.eigh(cov)
    evals = np.clip(evals, 1e-12, None)
    # Half-power region of a 2-D Gaussian: the intensity-weighted variance
    # of x over the disk r <= s*sqrt(2 ln 2) is s^2 * (1 - ln 2) exactly
    # (polar integral of r^3 exp(-r^2/2s^2) over the half-power disk).
    kappa = 1.0 - np.log(2.0)
    sigma = np.sqrt(evals / kappa)
    fwhm = sigma * (2.0 * np.sqrt(2.0 * np.log(2.0)))
    major_vec = evecs[:, 1]
    return BeamFit(
        fwhm_major_px=float(fwhm[1]),
        fwhm_minor_px=float(fwhm[0]),
        position_angle_rad=float(np.arctan2(major_vec[1], major_vec[0])),
    )


def model_fidelity(recovered: np.ndarray, truth: np.ndarray) -> float:
    """1 - ||recovered - truth|| / ||truth|| (1 = perfect reconstruction)."""
    truth = np.asarray(truth, dtype=np.float64)
    recovered = np.asarray(recovered, dtype=np.float64)
    denom = np.linalg.norm(truth)
    if denom == 0:
        raise ValueError("truth image is all zero")
    return 1.0 - float(np.linalg.norm(recovered - truth) / denom)
