"""CLEAN image restoration.

The final product of a CLEAN imaging run is the *restored image*: the CLEAN
component model convolved with an idealised (Gaussian) beam fitted to the
PSF main lobe, plus the residual image.  Convolving with the clean beam
re-applies the instrument's intrinsic resolution, so restored fluxes read in
Jy/beam like the dirty image's, while suppressing the super-resolution
artefacts a raw delta-component model would imply.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.metrics import BeamFit, fit_beam


def gaussian_beam_kernel(beam: BeamFit, size: int | None = None) -> np.ndarray:
    """Rasterise a :class:`BeamFit` as a unit-peak Gaussian kernel.

    ``size`` defaults to ~6 major-axis sigmas (odd, so the kernel has a
    centre pixel).
    """
    sigma_major = beam.fwhm_major_px / (2.0 * np.sqrt(2.0 * np.log(2.0)))
    sigma_minor = beam.fwhm_minor_px / (2.0 * np.sqrt(2.0 * np.log(2.0)))
    if size is None:
        size = int(np.ceil(6 * sigma_major)) | 1
    if size % 2 == 0:
        raise ValueError("kernel size must be odd")
    half = size // 2
    y, x = np.mgrid[-half : half + 1, -half : half + 1].astype(np.float64)
    ca, sa = np.cos(beam.position_angle_rad), np.sin(beam.position_angle_rad)
    x_rot = ca * x + sa * y
    y_rot = -sa * x + ca * y
    return np.exp(
        -0.5 * ((x_rot / max(sigma_major, 1e-6)) ** 2
                + (y_rot / max(sigma_minor, 1e-6)) ** 2)
    )


def restore_image(
    model_image: np.ndarray,
    residual_image: np.ndarray,
    psf: np.ndarray | None = None,
    beam: BeamFit | None = None,
) -> tuple[np.ndarray, BeamFit]:
    """Restored image = model (*) clean beam + residual.

    Provide either the PSF (the beam is fitted) or a pre-fitted beam.
    Convolution runs through FFTs (the model is typically sparse but the
    kernel is small; FFT keeps it simple and exact up to wrap-around, which
    the CLEAN window keeps away from the edges).

    Returns ``(restored, beam_fit)``.
    """
    if model_image.shape != residual_image.shape:
        raise ValueError("model and residual must have the same shape")
    if beam is None:
        if psf is None:
            raise ValueError("provide either psf or beam")
        beam = fit_beam(psf)
    kernel = gaussian_beam_kernel(beam)
    g = model_image.shape[0]
    if kernel.shape[0] > g:
        # A beam broader than the image (tiny grids, pathological PSF fits)
        # must be cropped: the embedding slice below would go negative and
        # wrap, scattering kernel corners across the image.  Keep the largest
        # odd footprint that fits — the lost wings carry negligible power
        # relative to the wrap-around corruption they would cause.
        size = g if g % 2 == 1 else g - 1
        trim = (kernel.shape[0] - size) // 2
        kernel = kernel[trim : trim + size, trim : trim + size]
    padded = np.zeros((g, g))
    half = kernel.shape[0] // 2
    centre = g // 2
    padded[
        centre - half : centre + half + 1, centre - half : centre + half + 1
    ] = kernel
    # centered convolution via FFT
    model_f = np.fft.fft2(np.fft.ifftshift(model_image))
    kernel_f = np.fft.fft2(np.fft.ifftshift(padded))
    convolved = np.real(np.fft.fftshift(np.fft.ifft2(model_f * kernel_f)))
    return convolved + residual_image, beam
