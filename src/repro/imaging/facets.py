"""Faceted imaging geometry: tiling the field into phase-rotated sub-images.

Faceting (Cornwell & Perley 1992, and the ``invert_by_image_partitions``
path of ARL's ftprocessor) splits a wide field into an ``n x n`` grid of
*facets*.  Each facet is imaged on its own small grid after phase-rotating
the visibilities so the facet centre becomes the phase centre:

``V' = V * exp(+2*pi*i * (u*l0 + v*m0 + w*(n0 - 1)))``,
``n0 = sqrt(1 - l0**2 - m0**2)``,

which shifts the sky by ``(-l0, -m0)``, bringing the facet to the image
centre where the w-term error of a small flat grid is smallest.  Prediction
de-rotates with the conjugate phasor.  The final image is the mosaic of the
facets' central tiles.

Geometry conventions (matching :mod:`repro.kernels.fft` rasters): image row
corresponds to ``m``, column to ``l``; a source at direction ``(l, m)``
appears at pixel ``(m/dl + G/2, l/dl + G/2)``.  All facets share the master
pixel scale, so their uv extent — ``1/pixel_scale`` — equals the master's
and the same visibilities grid onto every facet without rescaling.  Because
every facet's small grid is tangent to the same (l, m) plane, the phase
rotation alone leaves a ``w``-term error that is first-order in the offset
from the facet centre; :func:`facet_shifted_uvw` absorbs that linear term
into per-facet (u, v) shifts — the Cornwell & Perley trick — leaving only
second-order curvature mismatch, which vanishes at w = 0 and shrinks
quadratically with facet size (DESIGN.md §16 quantifies it).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.kernels.wkernel import n_term
from repro.core.pipeline import IDG
from repro.gridspec import GridSpec

__all__ = [
    "Facet",
    "FacetScheme",
    "embed_tile",
    "extract_tile",
    "facet_idg",
    "facet_rotation_phasor",
    "facet_shifted_uvw",
    "plan_facets",
]


@dataclass(frozen=True)
class Facet:
    """One tile of the facet decomposition.

    Attributes
    ----------
    index:
        ``(row, col)`` position in the facet grid.
    l0, m0:
        Direction cosines of the facet centre (the rotation target).
    row0, col0:
        Origin of this facet's tile in the master image (pixels).
    """

    index: tuple[int, int]
    l0: float
    m0: float
    row0: int
    col0: int


@dataclass(frozen=True)
class FacetScheme:
    """A full facet decomposition of a master grid.

    Attributes
    ----------
    master:
        The master grid geometry being tiled.
    n_facets:
        Facets per axis (``n_facets**2`` facets total).
    tile_size:
        Master-image pixels per facet tile (``grid_size / n_facets``).
    gridspec:
        The (shared) facet grid: ``tile_size`` padded by ``padding`` at the
        master pixel scale.  All facets use this one geometry.
    facets:
        The tiles, row-major.
    """

    master: GridSpec
    n_facets: int
    tile_size: int
    gridspec: GridSpec
    facets: tuple[Facet, ...]


def plan_facets(master: GridSpec, n_facets: int, padding: float = 1.5) -> FacetScheme:
    """Tile a master grid into ``n_facets x n_facets`` padded facets.

    ``padding`` oversizes each facet grid relative to its tile so sources
    near a tile edge stay away from the facet grid's own aliasing margin
    (the taper correction blows up near facet-image edges exactly as it
    does on the master grid).
    """
    if n_facets <= 0:
        raise ValueError("n_facets must be positive")
    if padding < 1.0:
        raise ValueError("padding must be >= 1")
    g = master.grid_size
    if g % n_facets:
        raise ValueError(
            f"grid size {g} is not divisible into {n_facets} facets per axis"
        )
    tile = g // n_facets
    if tile % 2:
        raise ValueError(
            f"facet tile size {tile} must be even (grid {g} / {n_facets} facets)"
        )
    facet_grid = int(np.ceil(tile * padding / 2.0)) * 2
    facet_grid = min(facet_grid, g)
    dl = master.pixel_scale
    gridspec = GridSpec(grid_size=facet_grid, image_size=facet_grid * dl)
    facets = []
    for fi in range(n_facets):
        for fj in range(n_facets):
            row_c = fi * tile + tile // 2
            col_c = fj * tile + tile // 2
            facets.append(
                Facet(
                    index=(fi, fj),
                    l0=(col_c - g // 2) * dl,
                    m0=(row_c - g // 2) * dl,
                    row0=fi * tile,
                    col0=fj * tile,
                )
            )
    return FacetScheme(
        master=master,
        n_facets=n_facets,
        tile_size=tile,
        gridspec=gridspec,
        facets=tuple(facets),
    )


def facet_rotation_phasor(
    uvw_m: np.ndarray,
    frequencies_hz: np.ndarray,
    l0: float,
    m0: float,
    sign: float,
) -> np.ndarray:
    """Per-visibility phase rotation to/from a facet centre.

    Returns ``exp(sign * 2*pi*i * (u*l0 + v*m0 + w*n0))`` with
    ``n0 = n_term(l0, m0) = 1 - sqrt(1 - l0**2 - m0**2)`` — the exact
    conjugate of this package's measurement-equation phase
    ``exp(-2*pi*i*(u*l + v*m + w*n_term(l, m)))`` evaluated at the facet
    centre — of shape ``(n_baselines, n_times, n_channels)``.  ``sign=+1``
    rotates measured visibilities so the facet centre becomes the phase
    centre (imaging); ``sign=-1`` restores the original phase centre
    (prediction).
    """
    frequencies_hz = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
    scale = frequencies_hz / SPEED_OF_LIGHT  # (C,)
    n0 = float(n_term(np.float64(l0), np.float64(m0)))
    # (n_bl, T, C) path length in wavelengths
    path = (
        uvw_m[:, :, 0, np.newaxis] * l0
        + uvw_m[:, :, 1, np.newaxis] * m0
        + uvw_m[:, :, 2, np.newaxis] * n0
    ) * scale
    return np.exp(sign * 2.0j * np.pi * path)


def facet_shifted_uvw(uvw_m: np.ndarray, facet: Facet) -> np.ndarray:
    """uvw with the first-order facet w term absorbed into (u, v).

    The phase rotation of :func:`facet_rotation_phasor` leaves a residual
    ``w * (n_term(l) - n_term(l_c))`` in the data, while the facet's gridder
    models ``w * n_term(l - l_c)`` — these agree at the facet centre but
    differ at first order in the offset, with slope ``d n_term/dl|_c = l_c /
    sqrt(1 - l_c^2 - m_c^2)``.  Shifting ``u += w * d n_term/dl`` and ``v +=
    w * d n_term/dm`` (the Cornwell & Perley faceting trick) absorbs that
    linear term into the geometry, leaving only second-order curvature
    mismatch.  The shift is per facet, so each facet grids with its own
    (slightly different) uvw set — and hence its own plan.
    """
    s0 = float(np.sqrt(max(1e-12, 1.0 - facet.l0**2 - facet.m0**2)))
    a = facet.l0 / s0
    b = facet.m0 / s0
    if a == 0.0 and b == 0.0:
        return uvw_m
    out = np.array(uvw_m, dtype=np.float64, copy=True)
    # rotated data phase ~ exp(-2*pi*i*((u + w*a)*l' + (v + w*b)*m')): the
    # effective baseline the facet grid sees is (u + w*a, v + w*b)
    out[:, :, 0] += a * uvw_m[:, :, 2]
    out[:, :, 1] += b * uvw_m[:, :, 2]
    return out


def extract_tile(facet_image: np.ndarray, scheme: FacetScheme, facet: Facet) -> np.ndarray:
    """The central ``tile_size`` block of a facet image — the unpadded part
    that lands in the mosaic.  Works on any ``(..., Gf, Gf)`` stack."""
    gf = scheme.gridspec.grid_size
    if facet_image.shape[-2:] != (gf, gf):
        raise ValueError(
            f"facet image pixel axes {facet_image.shape[-2:]} != ({gf}, {gf})"
        )
    half = scheme.tile_size // 2
    lo = gf // 2 - half
    hi = gf // 2 + half
    return facet_image[..., lo:hi, lo:hi]


def embed_tile(model_image: np.ndarray, scheme: FacetScheme, facet: Facet) -> np.ndarray:
    """Lift one facet's tile out of a master model image onto the (padded)
    facet grid, centred — the model this facet predicts from.

    ``model_image`` is ``(..., G, G)`` on the master raster; the returned
    array is ``(..., Gf, Gf)`` with the tile centred and the padding zero.
    """
    g = scheme.master.grid_size
    if model_image.shape[-2:] != (g, g):
        raise ValueError(
            f"model image pixel axes {model_image.shape[-2:]} != ({g}, {g})"
        )
    gf = scheme.gridspec.grid_size
    tile = scheme.tile_size
    out = np.zeros(model_image.shape[:-2] + (gf, gf), dtype=model_image.dtype)
    half = tile // 2
    lo = gf // 2 - half
    out[..., lo : lo + tile, lo : lo + tile] = model_image[
        ..., facet.row0 : facet.row0 + tile, facet.col0 : facet.col0 + tile
    ]
    return out


def facet_idg(idg: IDG, scheme: FacetScheme) -> IDG:
    """An IDG facade for the facet grid, config clamped to fit.

    The subgrid must fit inside the (small) facet grid with its kernel
    margin; keep the master ratio of support to subgrid where possible.
    """
    gf = scheme.gridspec.grid_size
    subgrid = min(idg.config.subgrid_size, max(8, gf // 2))
    if subgrid % 2:
        subgrid -= 1
    support = min(idg.config.kernel_support, max(2, subgrid // 3))
    return IDG(
        scheme.gridspec,
        replace(idg.config, subgrid_size=subgrid, kernel_support=support),
    )
