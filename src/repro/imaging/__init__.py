"""Imaging layer: dirty images, PSFs, weighting, CLEAN and the major cycle.

This package implements the surrounding machinery of the paper's Fig 2: the
imaging step (gridding + inverse FFT + grid correction), source extraction
with Hogbom CLEAN, and the predict step (model image -> FFT -> degridding),
iterated until the sky model converges.  IDG (or any baseline gridder with
the same interface) slots in as the gridding/degridding pair — the "drop-in
replacement" of Fig 4.
"""

from repro.imaging.image import (
    dirty_image_from_grid,
    model_image_to_grid,
    stokes_i_image,
)
from repro.imaging.weighting import natural_weights, uniform_weights, apply_weights
from repro.imaging.clean import CleanResult, hogbom_clean
from repro.imaging.cycle import ImagingCycle, MajorCycleResult
from repro.imaging.metrics import (
    BeamFit,
    dynamic_range,
    fit_beam,
    image_rms,
    model_fidelity,
)
from repro.imaging.restore import gaussian_beam_kernel, restore_image
from repro.imaging.spectral import (
    SpectralImager,
    SubbandImage,
    fit_spectral_index,
    make_subbands,
)
from repro.imaging.facets import (
    Facet,
    FacetScheme,
    facet_rotation_phasor,
    facet_shifted_uvw,
    plan_facets,
)
from repro.imaging.pipeline import (
    FTProcessor,
    ImagingContext,
    InvertResult,
    invert_2d,
    invert_facets,
    invert_wstack,
    invert_wstack_facets,
    make_ftprocessor,
    predict_2d,
    predict_facets,
    predict_wstack,
    predict_wstack_facets,
)

__all__ = [
    "dirty_image_from_grid",
    "model_image_to_grid",
    "stokes_i_image",
    "natural_weights",
    "uniform_weights",
    "apply_weights",
    "CleanResult",
    "hogbom_clean",
    "ImagingCycle",
    "MajorCycleResult",
    "BeamFit",
    "dynamic_range",
    "fit_beam",
    "image_rms",
    "model_fidelity",
    "gaussian_beam_kernel",
    "restore_image",
    "SpectralImager",
    "SubbandImage",
    "fit_spectral_index",
    "make_subbands",
    "Facet",
    "FacetScheme",
    "facet_rotation_phasor",
    "facet_shifted_uvw",
    "plan_facets",
    "FTProcessor",
    "ImagingContext",
    "InvertResult",
    "invert_2d",
    "invert_facets",
    "invert_wstack",
    "invert_wstack_facets",
    "make_ftprocessor",
    "predict_2d",
    "predict_facets",
    "predict_wstack",
    "predict_wstack_facets",
]
