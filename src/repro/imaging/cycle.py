"""The imaging major cycle (paper Fig 2).

One *imaging cycle* is: grid the residual visibilities and inverse-FFT to a
dirty image; CLEAN the brightest emission into the sky model; predict the
model back to visibilities (FFT + degridding) and subtract — revealing
fainter structure for the next cycle.  The paper benchmarks exactly one such
cycle (Fig 9/14: "Distribution of runtime/energy for one full imaging
cycle"); this module also iterates it to convergence, since that is what a
downstream user runs.

The gridder/degridder pair is pluggable: anything exposing the
:class:`repro.core.IDG` interface (``make_plan``/``grid``/``degrid``) works,
which is how the W-projection baseline is compared end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.aterms.schedule import ATermSchedule
from repro.core.pipeline import IDG
from repro.core.scratch import trim_thread_arenas
from repro.imaging.clean import CleanResult, hogbom_clean
from repro.imaging.image import (
    dirty_image_from_grid,
    model_image_to_grid,
    stokes_i_image,
)


@dataclass
class MajorCycleResult:
    """Result of :meth:`ImagingCycle.run`.

    Attributes
    ----------
    model_image:
        ``(G, G)`` real CLEAN-component image (Stokes I).
    residual_image:
        Final ``(G, G)`` Stokes-I residual dirty image.
    psf:
        ``(G, G)`` point spread function used by CLEAN.
    cycles:
        Per-major-cycle :class:`CleanResult` records.
    residual_rms_history:
        Residual-image rms after each major cycle.
    """

    model_image: np.ndarray
    residual_image: np.ndarray
    psf: np.ndarray
    cycles: list[CleanResult]
    residual_rms_history: list[float]

    @property
    def n_major_cycles(self) -> int:
        return len(self.cycles)

    def total_clean_flux(self) -> float:
        return float(sum(c.component_flux() for c in self.cycles))

    def restored(self):
        """Restored image: model convolved with the fitted clean beam plus
        the residual (see :mod:`repro.imaging.restore`).

        Returns ``(restored_image, beam_fit)``.
        """
        from repro.imaging.restore import restore_image

        return restore_image(self.model_image, self.residual_image, psf=self.psf)


class ImagingCycle:
    """Drives major cycles over a fixed observation with a given gridder.

    ``processor`` optionally replaces the direct grid/IFFT path with any
    :class:`repro.imaging.pipeline.FTProcessor` (w-stacked, faceted, ...);
    the major-cycle logic is identical, only invert/predict are delegated.
    """

    def __init__(
        self,
        idg: IDG,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
        baselines: np.ndarray,
        aterms: ATermGenerator | None = None,
        aterm_schedule: ATermSchedule | None = None,
        processor=None,
    ):
        self.idg = idg
        self.uvw_m = np.asarray(uvw_m, dtype=np.float64)
        self.frequencies_hz = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
        self.baselines = np.asarray(baselines)
        self.aterms = aterms
        self.processor = processor
        if processor is not None:
            self.plan = processor.plan
        else:
            self.plan = idg.make_plan(
                self.uvw_m, self.frequencies_hz, self.baselines,
                aterm_schedule=aterm_schedule,
            )
        self._weight_sum = float(self.plan.statistics.n_visibilities_gridded)

    # ------------------------------------------------------------ building
    def make_dirty_image(self, visibilities: np.ndarray) -> np.ndarray:
        """Stokes-I dirty image of a visibility set (grid + IFFT + correct)."""
        if self.processor is not None:
            # Only override the processor's own A-term default when this
            # cycle was given one explicitly.
            if self.aterms is not None:
                return self.processor.invert(visibilities, aterms=self.aterms).stokes_i
            return self.processor.invert(visibilities).stokes_i
        grid = self.idg.grid(self.plan, self.uvw_m, visibilities, aterms=self.aterms)
        image = dirty_image_from_grid(
            grid, self.idg.gridspec, weight_sum=self._weight_sum,
            taper=self.idg.config.taper, taper_beta=self.idg.config.taper_beta,
        )
        return stokes_i_image(image)

    def make_psf(self) -> np.ndarray:
        """PSF: the image of unit visibilities, normalised to peak 1."""
        shape = self.plan.flagged.shape + (2, 2)
        unit = np.zeros(shape, dtype=np.complex64)
        unit[..., 0, 0] = 1.0
        unit[..., 1, 1] = 1.0
        psf = self.make_dirty_image(unit)
        centre = self.idg.gridspec.grid_size // 2
        peak = psf[centre, centre]
        if peak == 0:
            raise RuntimeError("PSF centre is zero — no visibilities were gridded")
        return psf / peak

    def predict(self, model_image_stokes_i: np.ndarray) -> np.ndarray:
        """Predict visibilities of a Stokes-I model image (FFT + degrid)."""
        if self.processor is not None:
            if self.aterms is not None:
                return self.processor.predict(model_image_stokes_i, aterms=self.aterms)
            return self.processor.predict(model_image_stokes_i)
        g = self.idg.gridspec.grid_size
        model4 = np.zeros((4, g, g), dtype=np.complex128)
        model4[0] = model_image_stokes_i  # XX = YY = I (B = I*eye convention)
        model4[3] = model_image_stokes_i
        grid = model_image_to_grid(
            model4, self.idg.gridspec,
            taper=self.idg.config.taper, taper_beta=self.idg.config.taper_beta,
        )
        return self.idg.degrid(self.plan, self.uvw_m, grid, aterms=self.aterms)

    # ------------------------------------------------------------- driving
    def run(
        self,
        visibilities: np.ndarray,
        n_major: int = 3,
        gain: float = 0.1,
        minor_iterations: int = 200,
        threshold_factor: float = 3.0,
        clean_window_fraction: float = 0.75,
        major_gain: float = 0.8,
    ) -> MajorCycleResult:
        """Run up to ``n_major`` major cycles.

        ``threshold_factor`` sets each cycle's CLEAN stop threshold at
        ``factor * residual rms`` — a standard auto-threshold rule.
        ``clean_window_fraction`` restricts CLEAN peaks to the central
        fraction of the image: near the edge the taper grid correction
        divides by a vanishing taper, amplifying aliasing into spurious
        peaks (the usual reason imagers pad their grids and image only the
        interior).
        ``major_gain`` (WSClean's ``-mgain``) stops each minor loop once the
        residual peak has dropped by this fraction.  The PSF is only
        approximately shift-invariant (w-terms make the true response
        position-dependent), so minor cycles must not dig too deep before the
        exact degridding predict of the next major cycle resynchronises the
        residual.
        """
        psf = self.make_psf()
        residual_vis = np.array(visibilities, copy=True)
        g = self.idg.gridspec.grid_size
        model = np.zeros((g, g), dtype=np.float64)
        window = None
        if 0.0 < clean_window_fraction < 1.0:
            margin = int(round(g * (1.0 - clean_window_fraction) / 2.0))
            window = np.zeros((g, g), dtype=bool)
            window[margin : g - margin, margin : g - margin] = True
        cycles: list[CleanResult] = []
        rms_history: list[float] = []
        residual_image = self.make_dirty_image(residual_vis)

        def windowed_rms(image: np.ndarray) -> float:
            values = image[window] if window is not None else image
            return float(np.sqrt((values**2).mean()))

        if not (0.0 < major_gain <= 1.0):
            raise ValueError("major_gain must be in (0, 1]")
        for _ in range(n_major):
            rms = windowed_rms(residual_image)
            peak = float(
                np.abs(residual_image[window] if window is not None else residual_image).max()
            )
            threshold = max(threshold_factor * rms, (1.0 - major_gain) * peak)
            result = hogbom_clean(
                residual_image, psf, gain=gain,
                threshold=threshold,
                max_iterations=minor_iterations,
                window=window,
            )
            cycles.append(result)
            if len(result.components) == 0:
                rms_history.append(rms)
                break
            model += result.model_image
            predicted = self.predict(model)
            residual_vis = np.asarray(visibilities) - predicted
            residual_image = self.make_dirty_image(residual_vis)
            rms_history.append(windowed_rms(residual_image))
            # The gridding/degridding above is quiescent here; shrink the
            # scratch arenas to this cycle's working set so one oversized
            # early bucket doesn't pin its peak footprint for the whole run.
            trim_thread_arenas()

        return MajorCycleResult(
            model_image=model,
            residual_image=residual_image,
            psf=psf,
            cycles=cycles,
            residual_rms_history=rms_history,
        )
