"""Visibility data containers, I/O and noise.

A lightweight MeasurementSet analogue: :class:`VisibilityDataset` bundles
everything one subband observation produces — uvw tracks, visibilities,
flags, frequencies, station pairs — with selection, averaging and
(de)serialisation, plus a radiometer-equation thermal-noise model for
realistic simulations.  All gridders in the package consume the same arrays
the dataset carries.  For datasets larger than RAM, :mod:`repro.data.store`
provides the chunked memory-mapped schema-v2 store and the streaming
:class:`ChunkedVisibilitySource` the executors consume out of core.
"""

from repro.data.dataset import VisibilityDataset
from repro.data.io import (
    DatasetFormatError,
    load_dataset,
    open_dataset,
    save_dataset,
)
from repro.data.noise import add_thermal_noise, thermal_noise_sigma
from repro.data.store import (
    ChunkedStore,
    ChunkedVisibilitySource,
    DatasetWriter,
    StoreError,
    is_store,
    open_store,
    write_store,
)

__all__ = [
    "VisibilityDataset",
    "DatasetFormatError",
    "load_dataset",
    "open_dataset",
    "save_dataset",
    "add_thermal_noise",
    "thermal_noise_sigma",
    "ChunkedStore",
    "ChunkedVisibilitySource",
    "DatasetWriter",
    "StoreError",
    "is_store",
    "open_store",
    "write_store",
]
