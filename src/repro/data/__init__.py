"""Visibility data containers, I/O and noise.

A lightweight MeasurementSet analogue: :class:`VisibilityDataset` bundles
everything one subband observation produces — uvw tracks, visibilities,
flags, frequencies, station pairs — with selection, averaging and
(de)serialisation, plus a radiometer-equation thermal-noise model for
realistic simulations.  All gridders in the package consume the same arrays
the dataset carries.
"""

from repro.data.dataset import VisibilityDataset
from repro.data.io import load_dataset, save_dataset
from repro.data.noise import add_thermal_noise, thermal_noise_sigma

__all__ = [
    "VisibilityDataset",
    "load_dataset",
    "save_dataset",
    "add_thermal_noise",
    "thermal_noise_sigma",
]
