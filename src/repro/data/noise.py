"""Thermal (radiometer) noise for simulated visibilities.

The per-visibility noise of an interferometer follows the radiometer
equation: for stations with system equivalent flux density SEFD (Jy), one
correlation over bandwidth ``dnu`` and integration time ``tau`` has a
complex-Gaussian error with per-component standard deviation

``sigma = SEFD / (eta_s * sqrt(2 * dnu * tau))``

(eta_s = system efficiency).  Adding noise makes the CLEAN/thresholding
behaviour of the imaging tests realistic and sets a floor for the accuracy
comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import VisibilityDataset


def thermal_noise_sigma(
    sefd_jy: float,
    channel_width_hz: float,
    integration_time_s: float,
    efficiency: float = 0.95,
) -> float:
    """Per-component visibility noise in Jy (radiometer equation)."""
    if sefd_jy <= 0 or channel_width_hz <= 0 or integration_time_s <= 0:
        raise ValueError("sefd, channel width and integration time must be positive")
    if not (0 < efficiency <= 1):
        raise ValueError("efficiency must be in (0, 1]")
    return sefd_jy / (efficiency * np.sqrt(2.0 * channel_width_hz * integration_time_s))


def add_thermal_noise(
    dataset: VisibilityDataset,
    sefd_jy: float,
    channel_width_hz: float,
    integration_time_s: float,
    efficiency: float = 0.95,
    seed: int = 0,
) -> VisibilityDataset:
    """Return a copy of ``dataset`` with complex-Gaussian noise added.

    Noise is independent per (baseline, time, channel, polarisation) and per
    real/imaginary component, with the radiometer-equation sigma.
    """
    sigma = thermal_noise_sigma(
        sefd_jy, channel_width_hz, integration_time_s, efficiency=efficiency
    )
    rng = np.random.default_rng(seed)
    shape = dataset.visibilities.shape
    noise = sigma * (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    )
    noisy = (dataset.visibilities + noise).astype(dataset.visibilities.dtype)
    return dataset.with_visibilities(noisy)
