"""Simple RFI detection (sigma-clipping flagger).

Radio-frequency interference appears as visibility amplitudes far above the
astronomical signal.  This module implements the classic iterative
sigma-clipping flagger — per baseline and channel, samples whose amplitude
deviates from the (robust) running statistics by more than ``threshold``
sigmas are flagged, and the statistics re-estimated without them until no
new flags appear.  It is deliberately simple (production systems use
AOFlagger's SumThreshold), but exercises the flag-propagation paths of the
dataset container and the gridders.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import VisibilityDataset


def sigma_clip_flags(
    visibilities: np.ndarray,
    threshold: float = 5.0,
    max_iterations: int = 5,
) -> np.ndarray:
    """Boolean flags for amplitude outliers.

    Parameters
    ----------
    visibilities:
        ``(n_baselines, n_times, n_channels, 2, 2)`` complex data.
    threshold:
        Clip level in robust standard deviations (1.4826 * MAD).
    max_iterations:
        Re-estimation rounds.

    Returns
    -------
    ``(n_baselines, n_times, n_channels)`` bool, True = flagged.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    # Stokes-I-like amplitude per sample
    amplitude = 0.5 * (
        np.abs(visibilities[..., 0, 0]) + np.abs(visibilities[..., 1, 1])
    )
    flags = np.zeros(amplitude.shape, dtype=bool)
    for _ in range(max_iterations):
        valid = ~flags
        if not valid.any():
            break
        # per-(baseline, channel) robust statistics over time
        data = np.where(valid, amplitude, np.nan)
        median = np.nanmedian(data, axis=1, keepdims=True)
        mad = np.nanmedian(np.abs(data - median), axis=1, keepdims=True)
        sigma = 1.4826 * mad
        # a channel whose samples are all identical has sigma 0: nothing to clip
        with np.errstate(invalid="ignore"):
            new_flags = np.abs(amplitude - median) > threshold * np.maximum(
                sigma, 1e-30
            )
        new_flags &= sigma[:, 0, :][:, np.newaxis, :] > 0
        new_flags &= ~flags
        if not new_flags.any():
            break
        flags |= new_flags
    return flags


def flag_rfi(
    dataset: VisibilityDataset, threshold: float = 5.0, max_iterations: int = 5
) -> VisibilityDataset:
    """Dataset copy with sigma-clip flags OR-ed into the existing flags."""
    new_flags = sigma_clip_flags(
        dataset.visibilities, threshold=threshold, max_iterations=max_iterations
    )
    return VisibilityDataset(
        uvw_m=dataset.uvw_m,
        visibilities=dataset.visibilities,
        frequencies_hz=dataset.frequencies_hz,
        baselines=dataset.baselines,
        flags=dataset.flags | new_flags,
    )


def inject_rfi(
    dataset: VisibilityDataset,
    fraction: float = 0.001,
    amplitude_factor: float = 50.0,
    seed: int = 0,
) -> tuple[VisibilityDataset, np.ndarray]:
    """Corrupt a random sample fraction with strong interference.

    Returns the corrupted dataset and the ground-truth RFI mask (for
    flagger evaluation).
    """
    if not (0 <= fraction <= 1):
        raise ValueError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    shape = dataset.visibilities.shape[:3]
    mask = rng.uniform(size=shape) < fraction
    scale = amplitude_factor * max(float(np.abs(dataset.visibilities).mean()), 1e-12)
    rfi = scale * np.exp(2j * np.pi * rng.uniform(size=shape))
    vis = dataset.visibilities.copy()
    vis[mask] += rfi[mask, np.newaxis, np.newaxis] * np.eye(2, dtype=vis.dtype)
    return dataset.with_visibilities(vis), mask
