"""Schema-v2 chunked dataset store: out-of-core visibilities (DESIGN.md §15).

A *store* is a directory of raw ``.npy`` arrays — one file per dataset
column — plus a JSON manifest recording shapes, dtypes and a content hash::

    mydata.vis/
        manifest.json        <- written last: its presence commits the store
        uvw_m.npy            (n_baselines, n_times, 3)        float64
        visibilities.npy     (n_baselines, n_times, C, 2, 2)  complex64
        frequencies_hz.npy   (C,)                             float64
        baselines.npy        (n_baselines, 2)                 int
        flags.npy            (n_baselines, n_times, C)        bool

Unlike the schema-v1 ``.npz`` archive (:mod:`repro.data.io`), nothing here
is ever materialised whole: :class:`DatasetWriter` creates the arrays as
disk-backed memmaps and fills them *chunk-at-a-time* along the time axis,
and :func:`open_store` maps them back read-only (``mmap_mode="r"``), so both
generating and consuming a dataset far larger than RAM needs only one
chunk's worth of pages resident.  Crash safety comes from ordering, not
locking: the manifest is written last (atomically, temp-file + rename), so
a writer dying mid-stream leaves a directory without a manifest that
:func:`open_store` refuses — never a half-readable dataset.

:class:`ChunkedVisibilitySource` is the reader the executors stream from.
It wraps the visibility memmap (plus the stored flags) behind exactly the
indexing grammar the kernels use — ``vis[baseline, t0:t1, c0:c1]`` block
slices and the single trailing-axis ``reshape`` of the batched gather — so
it drops into :meth:`repro.core.IDG.grid` and every parallel executor in
place of the in-memory array.  Each block is copied out of the map and
masked on the fly (bit-identical to the eager
:func:`repro.core.pipeline.mask_flagged`), and :meth:`drop_caches` returns
resident file pages to the OS (``madvise(MADV_DONTNEED)``) so a streaming
run's RSS stays flat no matter how many bytes flow through.
"""

from __future__ import annotations

import json
import mmap
import pathlib
from dataclasses import dataclass
from typing import Final

import numpy as np

from repro.constants import COMPLEX_DTYPE
from repro.data.dataset import VisibilityDataset
from repro.hashing import ContentHasher

__all__ = [
    "STORE_SCHEMA_VERSION",
    "MANIFEST_NAME",
    "StoreError",
    "StoreManifest",
    "DatasetWriter",
    "ChunkedStore",
    "ChunkedVisibilitySource",
    "is_store",
    "open_store",
    "write_store",
]

#: On-disk schema version of the chunked store (v1 is the ``.npz`` archive).
STORE_SCHEMA_VERSION = 2

#: The commit marker: a directory is a store iff this file parses.
MANIFEST_NAME = "manifest.json"

#: Column name -> file name; the fixed layout of every store directory.
ARRAY_FILES: Final = {
    "uvw_m": "uvw_m.npy",
    "visibilities": "visibilities.npy",
    "frequencies_hz": "frequencies_hz.npy",
    "baselines": "baselines.npy",
    "flags": "flags.npy",
}

#: Bytes hashed per read while computing the streaming content hash.
_HASH_BLOCK_BYTES = 16 * 1024 * 1024


class StoreError(ValueError):
    """A malformed, incomplete or incompatible chunked dataset store."""


def _drop_pages(array: np.ndarray) -> None:
    """Advise the kernel to evict ``array``'s resident file pages.

    No-op for non-memmap arrays and on platforms without ``madvise``; the
    data stays readable (pages fault back in on demand) — only the
    *resident* footprint is returned to the OS.
    """
    mm = getattr(array, "_mmap", None)
    if mm is None:
        return
    try:
        mm.madvise(mmap.MADV_DONTNEED)
    except (AttributeError, ValueError, OSError):  # pragma: no cover
        pass


@dataclass(frozen=True)
class StoreManifest:
    """The parsed ``manifest.json`` of one store directory."""

    schema_version: int
    arrays: dict[str, dict]  # name -> {"shape": [...], "dtype": "<c8", ...}
    n_baselines: int
    n_times: int
    n_channels: int
    any_flags: bool
    content_hash: str

    def to_json(self) -> str:
        """Serialise, keys sorted, trailing newline (stable diffs)."""
        payload = {
            "schema_version": self.schema_version,
            "arrays": self.arrays,
            "n_baselines": self.n_baselines,
            "n_times": self.n_times,
            "n_channels": self.n_channels,
            "any_flags": self.any_flags,
            "content_hash": self.content_hash,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "StoreManifest":
        try:
            payload = json.loads(text)
            return cls(
                schema_version=int(payload["schema_version"]),
                arrays=dict(payload["arrays"]),
                n_baselines=int(payload["n_baselines"]),
                n_times=int(payload["n_times"]),
                n_channels=int(payload["n_channels"]),
                any_flags=bool(payload["any_flags"]),
                content_hash=str(payload["content_hash"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed store manifest: {exc!r}") from exc


def _streaming_content_hash(root: pathlib.Path) -> str:
    """sha256 over every array file's bytes in fixed blocks (bounded RSS).

    Each file is framed by its column name so moving bytes between files
    cannot collide; files are visited in sorted column order.
    """
    hasher = ContentHasher()
    for name in sorted(ARRAY_FILES):
        hasher.update_bytes(name.encode("ascii") + b"\x00")
        with open(root / ARRAY_FILES[name], "rb") as fh:
            while True:
                block = fh.read(_HASH_BLOCK_BYTES)
                if not block:
                    break
                hasher.update_bytes(block)
    return hasher.hexdigest()


# ------------------------------------------------------------------ writing


class DatasetWriter:
    """Chunk-at-a-time store writer: fill time ranges, then ``finalize``.

    Creates the five column files as writable memmaps
    (``np.lib.format.open_memmap(mode="w+")``) and exposes
    :meth:`write_times` to land ``[t0, t0 + n)`` time slabs of uvw,
    visibilities and flags — the producer never holds more than one slab in
    memory, and written pages are dropped back to the OS after each call so
    generation RSS stays flat.  ``frequencies_hz`` and ``baselines`` are
    small and set whole.  :meth:`finalize` verifies every timestep was
    written exactly once, computes the streaming content hash, and commits
    the store by writing the manifest (atomically) *last*.

    Use as a context manager or call :meth:`close` — an abandoned writer
    (crash before ``finalize``) leaves no manifest, so the partial directory
    is never readable as a store.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        n_baselines: int,
        n_times: int,
        n_channels: int,
        vis_dtype: np.dtype | type = COMPLEX_DTYPE,
        baselines_dtype: np.dtype | type = np.int64,
    ) -> None:
        if min(n_baselines, n_times, n_channels) <= 0:
            raise ValueError("n_baselines, n_times, n_channels must be positive")
        self.path = pathlib.Path(path)
        if (self.path / MANIFEST_NAME).exists():
            raise StoreError(
                f"refusing to overwrite existing store at {self.path}"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        self.n_baselines = int(n_baselines)
        self.n_times = int(n_times)
        self.n_channels = int(n_channels)
        open_memmap = np.lib.format.open_memmap
        self.uvw_m = open_memmap(
            self.path / ARRAY_FILES["uvw_m"], mode="w+",
            dtype=np.float64, shape=(n_baselines, n_times, 3),
        )
        self.visibilities = open_memmap(
            self.path / ARRAY_FILES["visibilities"], mode="w+",
            dtype=np.dtype(vis_dtype), shape=(n_baselines, n_times, n_channels, 2, 2),
        )
        self.flags = open_memmap(
            self.path / ARRAY_FILES["flags"], mode="w+",
            dtype=bool, shape=(n_baselines, n_times, n_channels),
        )
        self._frequencies: np.ndarray | None = None
        self._baselines: np.ndarray | None = None
        self._baselines_dtype = np.dtype(baselines_dtype)
        self._written = np.zeros(n_times, dtype=bool)
        self._any_flags = False
        self._finalized = False

    # -- metadata columns

    def set_frequencies(self, frequencies_hz: np.ndarray) -> None:
        """Set the ``(n_channels,)`` channel frequencies [Hz]."""
        freqs = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
        if freqs.shape != (self.n_channels,):
            raise ValueError(
                f"frequencies_hz shape {freqs.shape} != ({self.n_channels},)"
            )
        self._frequencies = freqs

    def set_baselines(self, baselines: np.ndarray) -> None:
        """Set the ``(n_baselines, 2)`` station-index pairs."""
        bl = np.asarray(baselines)
        if bl.shape != (self.n_baselines, 2):
            raise ValueError(
                f"baselines shape {bl.shape} != ({self.n_baselines}, 2)"
            )
        self._baselines = bl

    # -- bulk columns, one time slab at a time

    def write_times(
        self,
        t0: int,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        flags: np.ndarray | None = None,
    ) -> None:
        """Write the ``[t0, t0 + n)`` time slab of every bulk column.

        ``uvw_m`` is ``(n_baselines, n, 3)``, ``visibilities``
        ``(n_baselines, n, n_channels, 2, 2)`` and ``flags`` (optional —
        omitted means unflagged) ``(n_baselines, n, n_channels)``.  Slabs
        may arrive in any order but each timestep exactly once.
        """
        if self._finalized:
            raise StoreError("writer already finalized")
        uvw_m = np.asarray(uvw_m)
        visibilities = np.asarray(visibilities)
        n = uvw_m.shape[1] if uvw_m.ndim == 3 else -1
        if uvw_m.shape != (self.n_baselines, n, 3) or n <= 0:
            raise ValueError(
                f"uvw_m slab shape {uvw_m.shape} != "
                f"({self.n_baselines}, n, 3)"
            )
        if not (0 <= t0 and t0 + n <= self.n_times):
            raise ValueError(
                f"time slab [{t0}, {t0 + n}) outside [0, {self.n_times})"
            )
        if self._written[t0:t0 + n].any():
            raise StoreError(
                f"time slab [{t0}, {t0 + n}) overlaps already-written steps"
            )
        expected_vis = (self.n_baselines, n, self.n_channels, 2, 2)
        if visibilities.shape != expected_vis:
            raise ValueError(
                f"visibilities slab shape {visibilities.shape} != {expected_vis}"
            )
        self.uvw_m[:, t0:t0 + n] = uvw_m
        self.visibilities[:, t0:t0 + n] = visibilities
        if flags is not None:
            flags = np.asarray(flags, dtype=bool)
            if flags.shape != expected_vis[:3]:
                raise ValueError(
                    f"flags slab shape {flags.shape} != {expected_vis[:3]}"
                )
            self.flags[:, t0:t0 + n] = flags
            self._any_flags = self._any_flags or bool(flags.any())
        self._written[t0:t0 + n] = True
        # Return the slab's dirty pages to the OS so writer RSS stays flat.
        for column in (self.uvw_m, self.visibilities, self.flags):
            column.flush()
            _drop_pages(column)

    def mark_written(self, t0: int, n_times: int) -> None:
        """Declare ``[t0, t0 + n_times)`` filled directly through the maps.

        For producers that write into the exposed ``uvw_m`` /
        ``visibilities`` / ``flags`` memmaps themselves — e.g. a degrid
        streaming its prediction into ``writer.visibilities`` via ``out=`` —
        instead of going through :meth:`write_times`.  The coverage check in
        :meth:`finalize` treats these steps as written.
        """
        if self._finalized:
            raise StoreError("writer already finalized")
        if n_times <= 0 or not (0 <= t0 and t0 + n_times <= self.n_times):
            raise ValueError(
                f"time range [{t0}, {t0 + n_times}) outside "
                f"[0, {self.n_times})"
            )
        self._written[t0:t0 + n_times] = True

    # -- commit / abandon

    def finalize(self) -> "ChunkedStore":
        """Commit the store: verify coverage, hash, write the manifest last."""
        if self._finalized:
            raise StoreError("writer already finalized")
        if self._frequencies is None or self._baselines is None:
            raise StoreError(
                "set_frequencies() and set_baselines() must be called "
                "before finalize()"
            )
        if not self._written.all():
            missing = int((~self._written).sum())
            raise StoreError(
                f"{missing} of {self.n_times} timesteps were never written"
            )
        # Flush the maps before hashing so the manifest (written last) never
        # names data that could still be lost to a crash.
        for column in (self.uvw_m, self.visibilities, self.flags):
            column.flush()
        np.save(self.path / ARRAY_FILES["frequencies_hz"], self._frequencies)
        np.save(
            self.path / ARRAY_FILES["baselines"],
            np.ascontiguousarray(self._baselines, dtype=self._baselines_dtype),
        )
        arrays = {
            "uvw_m": self.uvw_m, "visibilities": self.visibilities,
            "flags": self.flags, "frequencies_hz": self._frequencies,
            "baselines": np.asarray(self._baselines, dtype=self._baselines_dtype),
        }
        manifest = StoreManifest(
            schema_version=STORE_SCHEMA_VERSION,
            arrays={
                name: {
                    "shape": list(arr.shape),
                    "dtype": np.dtype(arr.dtype).str,
                }
                for name, arr in sorted(arrays.items())
            },
            n_baselines=self.n_baselines,
            n_times=self.n_times,
            n_channels=self.n_channels,
            any_flags=self._any_flags,
            content_hash=_streaming_content_hash(self.path),
        )
        _atomic_write_text(self.path / MANIFEST_NAME, manifest.to_json())
        self.close()
        return open_store(self.path)

    def close(self) -> None:
        """Release the writable maps (without committing, if not finalized)."""
        self._finalized = True
        for name in ("uvw_m", "visibilities", "flags"):
            column = getattr(self, name, None)
            if column is not None:
                column.flush()
                _drop_pages(column)
                setattr(self, name, None)

    def __enter__(self) -> "DatasetWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write-to-temp + rename, same contract as :mod:`repro.atomicio`."""
    import os
    import tempfile

    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def write_store(
    dataset: VisibilityDataset,
    path: str | pathlib.Path,
    time_chunk: int = 256,
) -> "ChunkedStore":
    """Write an (in-memory) dataset as a chunked store, slab by slab.

    The convenience inverse of :meth:`ChunkedStore.as_dataset` — used by
    ``repro convert-dataset`` and the test fixtures.  ``time_chunk`` bounds
    the slab size (and therefore the writer's transient memory).
    """
    with DatasetWriter(
        path, dataset.n_baselines, dataset.n_times, dataset.n_channels,
        vis_dtype=dataset.visibilities.dtype,
        baselines_dtype=dataset.baselines.dtype,
    ) as writer:
        writer.set_frequencies(dataset.frequencies_hz)
        writer.set_baselines(dataset.baselines)
        for t0 in range(0, dataset.n_times, max(1, int(time_chunk))):
            t1 = min(t0 + max(1, int(time_chunk)), dataset.n_times)
            writer.write_times(
                t0,
                dataset.uvw_m[:, t0:t1],
                dataset.visibilities[:, t0:t1],
                flags=None if dataset.flags is None else dataset.flags[:, t0:t1],
            )
        return writer.finalize()


# ------------------------------------------------------------------ reading


def is_store(path: str | pathlib.Path) -> bool:
    """True when ``path`` is a chunked-store directory (manifest present)."""
    path = pathlib.Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def open_store(
    path: str | pathlib.Path, verify: bool = False
) -> "ChunkedStore":
    """Open a chunked store read-only (arrays stay memory-mapped).

    Validates the manifest against the files on disk (shape and dtype of
    every column); ``verify=True`` additionally re-computes the streaming
    content hash — an O(dataset-bytes) read, so off by default.
    """
    path = pathlib.Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise StoreError(
            f"{path} is not a chunked dataset store (no {MANIFEST_NAME}; "
            "an interrupted writer leaves the directory uncommitted)"
        )
    manifest = StoreManifest.from_json(manifest_path.read_text())
    if manifest.schema_version != STORE_SCHEMA_VERSION:
        raise StoreError(
            f"unsupported store schema version {manifest.schema_version} "
            f"(this build reads {STORE_SCHEMA_VERSION})"
        )
    missing = sorted(set(ARRAY_FILES) - set(manifest.arrays))
    extra = sorted(set(manifest.arrays) - set(ARRAY_FILES))
    if missing or extra:
        raise StoreError(
            f"store manifest columns do not match the schema: "
            f"missing {missing}, unexpected {extra}"
        )
    arrays: dict[str, np.ndarray] = {}
    for name, filename in ARRAY_FILES.items():
        file_path = path / filename
        if not file_path.is_file():
            raise StoreError(f"store is missing array file {filename}")
        arr = np.load(file_path, mmap_mode="r")
        spec = manifest.arrays[name]
        if list(arr.shape) != list(spec["shape"]) or (
            np.dtype(arr.dtype) != np.dtype(spec["dtype"])
        ):
            raise StoreError(
                f"array {name} on disk ({arr.shape}, {arr.dtype}) does not "
                f"match the manifest ({tuple(spec['shape'])}, {spec['dtype']})"
            )
        arrays[name] = arr
    if verify:
        digest = _streaming_content_hash(path)
        if digest != manifest.content_hash:
            raise StoreError(
                f"store content hash mismatch: manifest {manifest.content_hash}"
                f" != computed {digest}"
            )
    return ChunkedStore(path, manifest, arrays)


class ChunkedStore:
    """A committed store directory, every array memory-mapped read-only."""

    def __init__(
        self,
        path: pathlib.Path,
        manifest: StoreManifest,
        arrays: dict[str, np.ndarray],
    ) -> None:
        self.path = path
        self.manifest = manifest
        #: ``(n_baselines, n_times, 3)`` uvw memmap [m].
        self.uvw_m = arrays["uvw_m"]
        #: ``(n_baselines, n_times, C, 2, 2)`` raw (unmasked) visibility memmap.
        self.visibilities = arrays["visibilities"]
        #: ``(n_baselines, n_times, C)`` boolean flag memmap.
        self.flags = arrays["flags"]
        # The small columns are loaded eagerly (a few KB).
        self.frequencies_hz = np.array(arrays["frequencies_hz"])
        self.baselines = np.array(arrays["baselines"])

    @property
    def n_baselines(self) -> int:
        return self.manifest.n_baselines

    @property
    def n_times(self) -> int:
        return self.manifest.n_times

    @property
    def n_channels(self) -> int:
        return self.manifest.n_channels

    @property
    def n_visibilities(self) -> int:
        return self.n_baselines * self.n_times * self.n_channels

    @property
    def visibility_nbytes(self) -> int:
        """On-disk bytes of the visibility column alone."""
        return int(self.visibilities.nbytes)

    def source(self) -> "ChunkedVisibilitySource":
        """The streaming, lazily-masked reader the executors consume.

        Flags recorded in the store are applied per block; when the
        manifest says nothing was flagged the raw memmap is handed through
        (zero-copy fast path).
        """
        return ChunkedVisibilitySource(
            self.visibilities,
            flags=self.flags if self.manifest.any_flags else None,
            store_path=str(self.path),
        )

    def as_dataset(self) -> VisibilityDataset:
        """A :class:`VisibilityDataset` over the maps (no bulk copy).

        ``np.asarray`` in the dataset's ``__post_init__`` keeps memmaps of
        matching dtype as-is, so selections and kernels see lazily paged
        arrays.  Whole-array reductions on it will still fault in the full
        file — use :meth:`source` for bounded-memory gridding.
        """
        return VisibilityDataset(
            uvw_m=self.uvw_m,
            visibilities=self.visibilities,
            frequencies_hz=self.frequencies_hz,
            baselines=self.baselines,
            flags=self.flags,
        )

    def drop_caches(self) -> None:
        """Evict resident pages of every bulk column (``MADV_DONTNEED``)."""
        for column in (self.uvw_m, self.visibilities, self.flags):
            _drop_pages(column)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChunkedStore({self.path}, {self.n_baselines} baselines x "
            f"{self.n_times} times x {self.n_channels} channels, "
            f"{self.visibility_nbytes / 1e6:.1f} MB visibilities)"
        )


# ---------------------------------------------------------------- streaming


class ChunkedVisibilitySource:
    """Work-group-aligned, lazily-masked visibility reader.

    Wraps a ``(n_baselines, n_times, n_channels, 2, 2)`` array (normally a
    read-only memmap) plus an optional flag mask, and implements the exact
    indexing grammar every kernel and gather routine uses on the in-memory
    array:

    * ``src[baseline, t0:t1, c0:c1]`` — a masked *copy* of one work item's
      block (flagged samples zeroed, bit-identical to the eager
      :func:`repro.core.pipeline.mask_flagged`);
    * ``src.reshape(n_bl, n_t, n_ch, 4)`` — the trailing-axis flat view the
      batched gather takes (returns a reshaped source, blocks come back
      ``(t, c, 4)``);
    * ``.shape`` / ``.dtype`` / ``.ndim`` / ``.nbytes``.

    Anything outside that grammar raises ``TypeError`` — a source is a
    streaming reader, not an ndarray.

    ``store_path`` (set by :meth:`ChunkedStore.source`) lets the process
    executor re-open the same store inside each worker instead of pickling
    or copying payload bytes.
    """

    def __init__(
        self,
        visibilities: np.ndarray,
        flags: np.ndarray | None = None,
        store_path: str | None = None,
    ) -> None:
        visibilities = (
            visibilities if isinstance(visibilities, np.ndarray)
            else np.asarray(visibilities)
        )
        if visibilities.ndim != 5 or visibilities.shape[3:] != (2, 2):
            raise ValueError(
                f"visibilities must be (n_bl, n_times, n_channels, 2, 2), "
                f"got {visibilities.shape}"
            )
        if flags is not None and flags.shape != visibilities.shape[:3]:
            raise ValueError(
                f"flags shape {flags.shape} != {visibilities.shape[:3]}"
            )
        self._vis = visibilities
        self._flags = flags
        self.store_path = store_path

    # -- array-protocol surface the kernels touch

    @property
    def shape(self) -> tuple[int, ...]:
        return self._vis.shape

    @property
    def dtype(self) -> np.dtype:
        return self._vis.dtype

    @property
    def ndim(self) -> int:
        return self._vis.ndim

    @property
    def nbytes(self) -> int:
        return int(self._vis.nbytes)

    @property
    def flags_array(self) -> np.ndarray | None:
        """The mask applied per block (``None`` = nothing flagged)."""
        return self._flags

    def reshape(self, *shape: int) -> "_FlatVisibilitySource":
        """Only the batched gather's ``(n_bl, n_t, n_ch, 4)`` flattening."""
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        expected = (*self._vis.shape[:3], 4)
        if tuple(int(s) for s in shape) != expected:
            raise TypeError(
                f"ChunkedVisibilitySource only supports reshape{expected} "
                f"(the batched gather's flat view), got reshape{shape}"
            )
        return _FlatVisibilitySource(self)

    def __getitem__(self, key: tuple) -> np.ndarray:
        bl, t_slice, c_slice = self._block_key(key)
        return self._block(bl, t_slice, c_slice)

    def __len__(self) -> int:
        return self._vis.shape[0]

    # -- block reading

    @staticmethod
    def _block_key(key: tuple) -> tuple[int, slice, slice]:
        if (
            isinstance(key, tuple)
            and len(key) == 3
            and isinstance(key[0], (int, np.integer))
            and isinstance(key[1], slice)
            and isinstance(key[2], slice)
        ):
            return int(key[0]), key[1], key[2]
        raise TypeError(
            "ChunkedVisibilitySource supports only work-item block access "
            f"src[baseline, t0:t1, c0:c1]; got {key!r}"
        )

    def _block(self, bl: int, t_slice: slice, c_slice: slice) -> np.ndarray:
        """One masked ``(t, c, 2, 2)`` block, copied out of the map."""
        block = np.array(self._vis[bl, t_slice, c_slice])
        if self._flags is not None:
            mask = np.asarray(self._flags[bl, t_slice, c_slice])
            if mask.any():
                block[mask] = 0
        return block

    # -- masking / composition

    def with_flags(self, flags: np.ndarray | None) -> "ChunkedVisibilitySource":
        """This source with ``flags`` OR-ed onto the stored mask.

        ``None`` returns ``self`` unchanged.  The combined mask keeps
        ``store_path`` only when no *extra* flags were added (a worker
        re-opening the store would otherwise lose them).
        """
        if flags is None:
            return self
        flags = np.asarray(flags, dtype=bool)
        if flags.shape != self._vis.shape[:3]:
            raise ValueError(
                f"flags shape {flags.shape} != {self._vis.shape[:3]}"
            )
        combined = (
            flags if self._flags is None
            else np.logical_or(self._flags, flags)
        )
        return ChunkedVisibilitySource(self._vis, flags=combined)

    def materialize(self) -> np.ndarray:
        """The full masked array in memory (O(dataset) — small inputs only)."""
        out = np.array(self._vis)
        if self._flags is not None:
            out[np.asarray(self._flags)] = 0
        return out

    # -- work-group-aligned streaming

    def group_blocks(self, plan, start: int, stop: int):
        """Yield ``(index, block)`` for plan items ``[start, stop)``.

        ``block`` is the masked ``(time_end - time_start,
        channel_end - channel_start, 2, 2)`` visibility block of work item
        ``index`` — exactly the bytes
        :func:`repro.core.gridder.grid_work_group` reads for that item.
        """
        rows = plan.items[start:stop]
        for k, row in enumerate(rows):
            yield (
                start + k,
                self._block(
                    int(row["baseline"]),
                    slice(int(row["time_start"]), int(row["time_end"])),
                    slice(int(row["channel_start"]), int(row["channel_end"])),
                ),
            )

    def prefetch_group(self, plan, start: int, stop: int) -> "PrefetchedGroup":
        """Materialise one work group's blocks (the reader-stage payload).

        The returned :class:`PrefetchedGroup` serves the same indexing
        grammar from memory, so the gridder stage never touches the map —
        with the streaming credit gate bounding groups in flight, at most
        ``n_buffers`` groups' blocks are ever resident.
        """
        blocks: dict[tuple[int, int, int, int, int], np.ndarray] = {}
        rows = plan.items[start:stop]
        keys = [
            (
                int(row["baseline"]),
                int(row["time_start"]), int(row["time_end"]),
                int(row["channel_start"]), int(row["channel_end"]),
            )
            for row in rows
        ]

        # Plan items are sorted, so a group is mostly runs of one baseline
        # with back-to-back time windows over the same channel range.  Read
        # each run as ONE slab and carve per-item views out of it — the
        # per-item map-touch/mask/copy overhead is what separates chunked
        # from in-memory throughput, and coalescing amortises it ~64x.
        def read_run(run: list[tuple[int, int, int, int, int]]) -> None:
            bl, t_lo, c0, c1 = run[0][0], run[0][1], run[0][3], run[0][4]
            slab = self._block(bl, slice(t_lo, run[-1][2]), slice(c0, c1))
            for key in run:
                blocks[key] = slab[key[1] - t_lo:key[2] - t_lo]

        run: list[tuple[int, int, int, int, int]] = []
        for key in keys:
            if key in blocks:
                continue
            if run and not (
                key[0] == run[-1][0]          # same baseline
                and key[1] == run[-1][2]      # times continue where run ended
                and key[3:] == run[-1][3:]    # same channel range
            ):
                read_run(run)
                run = []
            run.append(key)
        if run:
            read_run(run)
        return PrefetchedGroup(self._vis.shape, self._vis.dtype, blocks)

    def drop_caches(self) -> None:
        """Return resident visibility/flag file pages to the OS."""
        _drop_pages(self._vis)
        if self._flags is not None:
            _drop_pages(self._flags)


class _FlatVisibilitySource:
    """The ``(n_bl, n_t, n_ch, 4)`` flat view of a source (gather grammar)."""

    def __init__(self, source: ChunkedVisibilitySource) -> None:
        self._source = source
        self.shape = (*source.shape[:3], 4)
        self.dtype = source.dtype
        self.ndim = 4

    def __getitem__(self, key: tuple) -> np.ndarray:
        bl, t_slice, c_slice = ChunkedVisibilitySource._block_key(key)
        block = self._source._block(bl, t_slice, c_slice)
        return block.reshape(*block.shape[:2], 4)


class PrefetchedGroup:
    """One work group's masked blocks, resident in memory.

    Serves the block-access grammar (``[baseline, t0:t1, c0:c1]`` plus the
    trailing-axis reshape) from a dict keyed by the work items' exact
    ranges; any other access raises ``KeyError``/``TypeError`` — a
    prefetched group holds precisely the bytes its work group needs.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype,
        blocks: dict[tuple[int, int, int, int, int], np.ndarray],
        flat: bool = False,
    ) -> None:
        self._full_shape = tuple(shape)
        self.dtype = dtype
        self._blocks = blocks
        self._flat = flat

    @property
    def shape(self) -> tuple[int, ...]:
        if self._flat:
            return (*self._full_shape[:3], 4)
        return self._full_shape

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the prefetched blocks (not the full dataset)."""
        return sum(b.nbytes for b in self._blocks.values())

    def reshape(self, *shape: int) -> "PrefetchedGroup":
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        expected = (*self._full_shape[:3], 4)
        if tuple(int(s) for s in shape) != expected:
            raise TypeError(
                f"PrefetchedGroup only supports reshape{expected}, "
                f"got reshape{shape}"
            )
        return PrefetchedGroup(
            self._full_shape, self.dtype, self._blocks, flat=True
        )

    def __getitem__(self, key: tuple) -> np.ndarray:
        bl, t_slice, c_slice = ChunkedVisibilitySource._block_key(key)
        block = self._blocks[
            (bl, t_slice.start, t_slice.stop, c_slice.start, c_slice.stop)
        ]
        if self._flat:
            return block.reshape(*block.shape[:2], 4)
        return block
