"""The :class:`VisibilityDataset` container.

Shapes follow the package-wide convention:

* ``uvw_m``        — ``(n_baselines, n_times, 3)`` metres,
* ``visibilities`` — ``(n_baselines, n_times, n_channels, 2, 2)`` complex64,
* ``flags``        — ``(n_baselines, n_times, n_channels)`` bool
  (True = do not use),
* ``frequencies_hz`` — ``(n_channels,)``,
* ``baselines``    — ``(n_baselines, 2)`` station indices.

Selections return *views* wherever NumPy slicing allows it (time and channel
ranges); baseline subsets copy.  Channel/time averaging produce new datasets
with correctly propagated uvw (time averaging) and frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.constants import COMPLEX_DTYPE


@dataclass
class VisibilityDataset:
    """One subband of visibility data plus its metadata."""

    uvw_m: np.ndarray
    visibilities: np.ndarray
    frequencies_hz: np.ndarray
    baselines: np.ndarray
    flags: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.uvw_m = np.asarray(self.uvw_m, dtype=np.float64)
        self.visibilities = np.asarray(self.visibilities)
        self.frequencies_hz = np.atleast_1d(np.asarray(self.frequencies_hz, dtype=np.float64))
        self.baselines = np.asarray(self.baselines)
        if self.uvw_m.ndim != 3 or self.uvw_m.shape[2] != 3:
            raise ValueError(f"uvw_m must be (n_bl, n_times, 3), got {self.uvw_m.shape}")
        n_bl, n_times = self.uvw_m.shape[:2]
        expected_vis = (n_bl, n_times, self.n_channels, 2, 2)
        if self.visibilities.shape != expected_vis:
            raise ValueError(
                f"visibilities shape {self.visibilities.shape} != {expected_vis}"
            )
        if self.baselines.shape != (n_bl, 2):
            raise ValueError(f"baselines must be ({n_bl}, 2), got {self.baselines.shape}")
        if self.flags is None:
            self.flags = np.zeros((n_bl, n_times, self.n_channels), dtype=bool)
        else:
            self.flags = np.asarray(self.flags, dtype=bool)
            if self.flags.shape != (n_bl, n_times, self.n_channels):
                raise ValueError(
                    f"flags shape {self.flags.shape} != {(n_bl, n_times, self.n_channels)}"
                )

    # ---------------------------------------------------------- construction

    @classmethod
    def simulate(
        cls,
        observation,
        sky,
        aterms=None,
        schedule=None,
    ) -> "VisibilityDataset":
        """Simulate a dataset from an observation and a sky model.

        Thin convenience over
        :func:`repro.sky.simulate.predict_visibilities`; accepts the same
        A-term generator/schedule pair.
        """
        from repro.sky.simulate import predict_visibilities

        baselines = observation.array.baselines()
        vis = predict_visibilities(
            observation.uvw_m, observation.frequencies_hz, sky,
            baselines=baselines, aterms=aterms, schedule=schedule,
        )
        return cls(
            uvw_m=observation.uvw_m,
            visibilities=vis,
            frequencies_hz=observation.frequencies_hz,
            baselines=baselines,
        )

    # ----------------------------------------------------------- properties

    @property
    def n_baselines(self) -> int:
        return self.uvw_m.shape[0]

    @property
    def n_times(self) -> int:
        return self.uvw_m.shape[1]

    @property
    def n_channels(self) -> int:
        return self.frequencies_hz.size

    @property
    def n_visibilities(self) -> int:
        return self.n_baselines * self.n_times * self.n_channels

    @property
    def n_unflagged(self) -> int:
        return int((~self.flags).sum())

    # ------------------------------------------------------------ selection

    def select_times(self, start: int, stop: int) -> "VisibilityDataset":
        """Timestep range ``[start, stop)`` (views where possible)."""
        if not (0 <= start < stop <= self.n_times):
            raise ValueError(f"invalid time range [{start}, {stop})")
        return VisibilityDataset(
            uvw_m=self.uvw_m[:, start:stop],
            visibilities=self.visibilities[:, start:stop],
            frequencies_hz=self.frequencies_hz,
            baselines=self.baselines,
            flags=self.flags[:, start:stop],
        )

    def select_channels(self, start: int, stop: int) -> "VisibilityDataset":
        """Channel range ``[start, stop)``."""
        if not (0 <= start < stop <= self.n_channels):
            raise ValueError(f"invalid channel range [{start}, {stop})")
        return VisibilityDataset(
            uvw_m=self.uvw_m,
            visibilities=self.visibilities[:, :, start:stop],
            frequencies_hz=self.frequencies_hz[start:stop],
            baselines=self.baselines,
            flags=self.flags[:, :, start:stop],
        )

    def select_baselines(self, indices: np.ndarray) -> "VisibilityDataset":
        """Arbitrary baseline subset (copies)."""
        indices = np.asarray(indices)
        return VisibilityDataset(
            uvw_m=self.uvw_m[indices],
            visibilities=self.visibilities[indices],
            frequencies_hz=self.frequencies_hz,
            baselines=self.baselines[indices],
            flags=self.flags[indices],
        )

    def select_max_baseline(self, max_length_m: float) -> "VisibilityDataset":
        """Keep baselines whose mean |uvw| is below ``max_length_m`` —
        the classic short-baseline selection for wide, low-resolution maps."""
        lengths = np.linalg.norm(self.uvw_m, axis=2).mean(axis=1)
        return self.select_baselines(np.flatnonzero(lengths <= max_length_m))

    # ------------------------------------------------------------ averaging

    def average_channels(self, factor: int) -> "VisibilityDataset":
        """Average groups of ``factor`` adjacent channels.

        Flagged samples are excluded from each average; an output sample is
        flagged only if *all* its inputs were.  ``n_channels`` must be
        divisible by ``factor``.
        """
        if factor <= 0 or self.n_channels % factor:
            raise ValueError(
                f"factor {factor} must divide n_channels {self.n_channels}"
            )
        c_out = self.n_channels // factor
        vis = self.visibilities.reshape(
            self.n_baselines, self.n_times, c_out, factor, 2, 2
        )
        flags = self.flags.reshape(self.n_baselines, self.n_times, c_out, factor)
        weight = (~flags).astype(np.float32)[..., np.newaxis, np.newaxis]
        summed = (vis * weight).sum(axis=3)
        counts = weight.sum(axis=3)
        out = np.zeros_like(summed)
        np.divide(summed, counts, out=out, where=counts > 0)
        return VisibilityDataset(
            uvw_m=self.uvw_m,
            visibilities=out.astype(COMPLEX_DTYPE),
            frequencies_hz=self.frequencies_hz.reshape(c_out, factor).mean(axis=1),
            baselines=self.baselines,
            flags=flags.all(axis=3),
        )

    def average_times(self, factor: int) -> "VisibilityDataset":
        """Average groups of ``factor`` adjacent timesteps (and their uvw)."""
        if factor <= 0 or self.n_times % factor:
            raise ValueError(f"factor {factor} must divide n_times {self.n_times}")
        t_out = self.n_times // factor
        vis = self.visibilities.reshape(
            self.n_baselines, t_out, factor, self.n_channels, 2, 2
        )
        flags = self.flags.reshape(self.n_baselines, t_out, factor, self.n_channels)
        weight = (~flags).astype(np.float32)[..., np.newaxis, np.newaxis]
        summed = (vis * weight).sum(axis=2)
        counts = weight.sum(axis=2)
        out = np.zeros_like(summed)
        np.divide(summed, counts, out=out, where=counts > 0)
        return VisibilityDataset(
            uvw_m=self.uvw_m.reshape(self.n_baselines, t_out, factor, 3).mean(axis=2),
            visibilities=out.astype(COMPLEX_DTYPE),
            frequencies_hz=self.frequencies_hz,
            baselines=self.baselines,
            flags=flags.all(axis=2),
        )

    # -------------------------------------------------------------- utility

    def with_visibilities(self, visibilities: np.ndarray) -> "VisibilityDataset":
        """Same metadata, different data (e.g. residuals after subtraction)."""
        return VisibilityDataset(
            uvw_m=self.uvw_m,
            visibilities=visibilities,
            frequencies_hz=self.frequencies_hz,
            baselines=self.baselines,
            flags=self.flags,
        )

    def flag_fraction(self) -> float:
        return float(self.flags.mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VisibilityDataset({self.n_baselines} baselines x {self.n_times} times "
            f"x {self.n_channels} channels, {100 * self.flag_fraction():.1f}% flagged)"
        )
