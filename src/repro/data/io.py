"""Dataset (de)serialisation.

A single compressed ``.npz`` per dataset — the pragmatic stand-in for a
MeasurementSet when the workload is synthetic.  The on-disk schema is
versioned so future layouts can migrate.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.data.dataset import VisibilityDataset

#: Current on-disk schema version.
SCHEMA_VERSION = 1


def save_dataset(dataset: VisibilityDataset, path: str | pathlib.Path) -> None:
    """Write a dataset to ``path`` (``.npz``, compressed)."""
    path = pathlib.Path(path)
    np.savez_compressed(
        path,
        schema_version=np.int64(SCHEMA_VERSION),
        uvw_m=dataset.uvw_m,
        visibilities=dataset.visibilities,
        frequencies_hz=dataset.frequencies_hz,
        baselines=dataset.baselines,
        flags=dataset.flags,
    )


def load_dataset(path: str | pathlib.Path) -> VisibilityDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = pathlib.Path(path)
    with np.load(path) as archive:
        version = int(archive["schema_version"])
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported dataset schema version {version} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        return VisibilityDataset(
            uvw_m=archive["uvw_m"],
            visibilities=archive["visibilities"],
            frequencies_hz=archive["frequencies_hz"],
            baselines=archive["baselines"],
            flags=archive["flags"],
        )
