"""Dataset (de)serialisation.

A single compressed ``.npz`` per dataset — the pragmatic stand-in for a
MeasurementSet when the workload is synthetic.  The on-disk schema is
versioned so future layouts can migrate.  Writes are atomic (temp file +
rename via :mod:`repro.atomicio`): a crash mid-save leaves any existing
dataset intact instead of a truncated archive, and missing parent
directories are created.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.atomicio import atomic_savez_compressed
from repro.data.dataset import VisibilityDataset

#: Current on-disk schema version.
SCHEMA_VERSION = 1


def save_dataset(
    dataset: VisibilityDataset, path: str | pathlib.Path
) -> pathlib.Path:
    """Write a dataset to ``path`` (``.npz``, compressed) atomically.

    Returns the path actually written (a ``.npz`` suffix is appended when
    missing, mirroring numpy).
    """
    return atomic_savez_compressed(
        path,
        schema_version=np.int64(SCHEMA_VERSION),
        uvw_m=dataset.uvw_m,
        visibilities=dataset.visibilities,
        frequencies_hz=dataset.frequencies_hz,
        baselines=dataset.baselines,
        flags=dataset.flags,
    )


def load_dataset(path: str | pathlib.Path) -> VisibilityDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = pathlib.Path(path)
    with np.load(path) as archive:
        version = int(archive["schema_version"])
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported dataset schema version {version} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        return VisibilityDataset(
            uvw_m=archive["uvw_m"],
            visibilities=archive["visibilities"],
            frequencies_hz=archive["frequencies_hz"],
            baselines=archive["baselines"],
            flags=archive["flags"],
        )
