"""Dataset (de)serialisation.

Schema v1 is a single compressed ``.npz`` per dataset — the pragmatic
stand-in for a MeasurementSet when the workload is synthetic.  The on-disk
schema is versioned so future layouts can migrate; schema v2 is the chunked
memory-mapped store directory in :mod:`repro.data.store`, and
:func:`open_dataset` auto-detects either by path shape.  Writes are atomic
(temp file + rename via :mod:`repro.atomicio`): a crash mid-save leaves any
existing dataset intact instead of a truncated archive, and missing parent
directories are created.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.atomicio import atomic_savez_compressed
from repro.data.dataset import VisibilityDataset

#: Current ``.npz`` on-disk schema version (v2 is the chunked store).
SCHEMA_VERSION = 1

#: Every key a schema-v1 archive must carry, and no others.
_ARCHIVE_KEYS = frozenset(
    {"schema_version", "uvw_m", "visibilities", "frequencies_hz",
     "baselines", "flags"}
)


class DatasetFormatError(ValueError):
    """A dataset archive whose structure does not match the schema."""


def save_dataset(
    dataset: VisibilityDataset, path: str | pathlib.Path
) -> pathlib.Path:
    """Write a dataset to ``path`` (``.npz``, compressed) atomically.

    Returns the path actually written (a ``.npz`` suffix is appended when
    missing, mirroring numpy).
    """
    return atomic_savez_compressed(
        path,
        schema_version=np.int64(SCHEMA_VERSION),
        uvw_m=dataset.uvw_m,
        visibilities=dataset.visibilities,
        frequencies_hz=dataset.frequencies_hz,
        baselines=dataset.baselines,
        flags=dataset.flags,
    )


def load_dataset(path: str | pathlib.Path) -> VisibilityDataset:
    """Read a dataset written by :func:`save_dataset`.

    Raises :class:`DatasetFormatError` when the archive is structurally
    wrong — missing or unexpected keys — rather than a raw ``KeyError``,
    and ``ValueError`` on a schema-version mismatch.
    """
    path = pathlib.Path(path)
    with np.load(path) as archive:
        present = set(archive.files)
        missing = sorted(_ARCHIVE_KEYS - present)
        extra = sorted(present - _ARCHIVE_KEYS)
        if missing or extra:
            raise DatasetFormatError(
                f"{path} is not a schema-v{SCHEMA_VERSION} dataset archive: "
                f"missing keys {missing}, unexpected keys {extra}"
            )
        version = int(archive["schema_version"])
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported dataset schema version {version} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        return VisibilityDataset(
            uvw_m=archive["uvw_m"],
            visibilities=archive["visibilities"],
            frequencies_hz=archive["frequencies_hz"],
            baselines=archive["baselines"],
            flags=archive["flags"],
        )


def open_dataset(path: str | pathlib.Path):
    """Open either dataset format by path: ``.npz`` file or store directory.

    Returns a :class:`VisibilityDataset` for a schema-v1 archive and a
    :class:`repro.data.store.ChunkedStore` for a schema-v2 store directory
    (call its ``as_dataset()`` / ``source()`` as needed).  Raises
    :class:`DatasetFormatError` when the path is neither.
    """
    from repro.data.store import is_store, open_store

    path = pathlib.Path(path)
    if is_store(path):
        return open_store(path)
    if path.is_file():
        return load_dataset(path)
    if path.is_dir():
        raise DatasetFormatError(
            f"{path} is a directory but not a chunked dataset store "
            "(no manifest.json — an interrupted writer leaves the "
            "directory uncommitted)"
        )
    raise DatasetFormatError(f"no dataset at {path}")
