"""idgsan — opt-in lockset race detection and deadlock watchdog.

The static IDG1xx rules (:mod:`repro.analysis.rules`) catch lock-discipline
violations visible in the source; this module catches the ones that only
exist at runtime — a stage callable mutating shared state it received through
a channel, an arena view crossing threads through a closure, an AB/BA
inversion between locks the AST cannot connect.  It is the dynamic half of
the same contract, and like :mod:`repro.analysis.contracts` it is a **true
no-op unless enabled**: importing this module patches nothing; only
:func:`install` (or ``IDG_SANITIZE=1`` + :func:`maybe_install_from_env`)
monkeypatches the runtime classes, and :func:`uninstall` restores them
byte-for-byte.

What it does while installed:

* **Lockset race detection** (Eraser-style, write-write).  Attribute writes
  on tracked classes (:class:`~repro.runtime.queues.Channel`,
  :class:`~repro.runtime.queues.CreditGate`,
  :class:`~repro.runtime.telemetry.Telemetry`,
  :class:`~repro.runtime.graph.StageGraph`, plus anything registered with
  :meth:`Sanitizer.track_class`) are intercepted via ``__setattr__``.  Each
  field starts *exclusive* to its constructing thread; the first write from
  a second thread makes it *shared* and seeds its candidate lockset with the
  locks held at that write; every later write intersects.  An empty
  intersection means no single lock protects the field — a data race is
  reported (once per field) with the writing thread and stage.

* **Arena ownership**.  :class:`~repro.core.scratch.ScratchArena` views are
  single-thread by contract; ``take``/``zeros`` record the first toucher as
  the owner (``trim``/``release`` invalidate all views and reset ownership)
  and any other thread allocating from the same arena is reported.

* **Deadlock watchdog**.  A daemon thread snapshots the wait-for graph —
  which thread waits on which tracked lock, who owns it, who is parked in
  ``Channel.put``/``get`` (via the :meth:`Channel.waiters` introspection
  API) — and on a lock cycle, or on a global stall (every channel quiet and
  some thread blocked longer than ``stall_timeout``), records a report with
  per-thread stack traces and *aborts* the run: tracked locks and condition
  waits poll in short slices and raise ``PipelineAborted`` once the abort
  flag is set, so CI fails with a diagnosis instead of hanging.

Typical use::

    from repro.analysis.sanitizer import sanitized

    with sanitized() as san:
        graph.run()
    san.raise_if_reports()

or, for a whole test session, ``IDG_SANITIZE=1 pytest`` (the suite's
``conftest.py`` installs the sanitizer and fails any test that produced a
report).
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Sanitizer",
    "SanitizerError",
    "SanitizerReport",
    "TrackedCondition",
    "TrackedLock",
    "current",
    "enable_sanitizer",
    "install",
    "maybe_install_from_env",
    "sanitized",
    "sanitizer_enabled",
    "uninstall",
]

_ENV_VAR = "IDG_SANITIZE"
_TRUTHY = ("1", "true", "yes", "on")

#: Programmatic override; ``None`` defers to the environment variable.
_forced: bool | None = None

#: The installed sanitizer (None while uninstalled).
CURRENT: "Sanitizer | None" = None

#: Poll slice for abortable lock acquisition / condition waits (seconds).
_WAIT_SLICE = 0.05

_tls = threading.local()


def enable_sanitizer(enabled: bool = True) -> None:
    """Force the ``IDG_SANITIZE`` gate on (or off) programmatically."""
    global _forced
    _forced = enabled


def sanitizer_enabled() -> bool:
    if _forced is not None:
        return _forced
    return os.environ.get(_ENV_VAR, "").strip().lower() in _TRUTHY


def current() -> "Sanitizer | None":
    """The installed sanitizer, or None."""
    return CURRENT


class SanitizerError(RuntimeError):
    """Raised by :meth:`Sanitizer.raise_if_reports` when violations exist."""


@dataclass(frozen=True)
class SanitizerReport:
    """One detected violation."""

    kind: str  # "race" | "deadlock" | "arena"
    message: str
    thread: str
    stage: str | None = None
    details: str = ""

    def format_text(self) -> str:
        where = f" [stage {self.stage}]" if self.stage else ""
        text = f"idgsan {self.kind}: {self.message} (thread {self.thread}{where})"
        if self.details:
            text += "\n" + self.details
        return text


@dataclass
class _FieldState:
    """Eraser state of one tracked attribute."""

    owner: int  # ident of the thread in the exclusive phase
    shared: bool = False
    lockset: frozenset[int] = frozenset()
    reported: bool = False


def _held_locks() -> list[Any]:
    locks = getattr(_tls, "locks", None)
    if locks is None:
        locks = []
        _tls.locks = locks
    return locks


def _stage_label() -> str | None:
    return getattr(_tls, "stage", None)


class Sanitizer:
    """Collected state of one sanitizer session (reports, wait-for graph).

    Parameters
    ----------
    stall_timeout:
        Seconds a thread may stay blocked on a channel/gate with zero global
        progress before the watchdog declares the run wedged.  Keep it well
        above the longest single stage-body computation.
    watchdog_interval:
        Seconds between watchdog sweeps.
    """

    def __init__(
        self, stall_timeout: float = 30.0, watchdog_interval: float = 0.25
    ) -> None:
        self.stall_timeout = stall_timeout
        self.watchdog_interval = watchdog_interval
        self.reports: list[SanitizerReport] = []
        self._reports_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._abort = threading.Event()
        #: thread ident -> tracked lock it is currently blocked acquiring.
        self._lock_waiting: dict[int, Any] = {}
        self._channels: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._gates: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._tracked_classes: list[type] = []
        self._last_ops = -1
        self._last_progress = 0.0
        self._deadlock_reported = False

    # -------------------------------------------------------------- reports

    def report(
        self, kind: str, message: str, details: str = ""
    ) -> None:
        entry = SanitizerReport(
            kind=kind,
            message=message,
            thread=threading.current_thread().name,
            stage=_stage_label(),
            details=details,
        )
        with self._reports_lock:
            self.reports.append(entry)

    def raise_if_reports(self) -> None:
        """Raise :class:`SanitizerError` listing every report, if any."""
        with self._reports_lock:
            if not self.reports:
                return
            text = "\n".join(r.format_text() for r in self.reports)
            count = len(self.reports)
        raise SanitizerError(f"{count} sanitizer report(s):\n{text}")

    def clear(self) -> None:
        with self._reports_lock:
            self.reports.clear()

    # ------------------------------------------------------------- locksets

    def _push(self, lock: Any) -> None:
        _held_locks().append(lock)

    def _pop(self, lock: Any) -> None:
        held = _held_locks()
        if lock in held:
            held.remove(lock)

    def check_abort(self) -> None:
        """Raise ``PipelineAborted`` when the watchdog aborted the run."""
        if self._abort.is_set():
            from repro.runtime.queues import PipelineAborted

            raise PipelineAborted(
                "idgsan: deadlock watchdog aborted the run (see reports)"
            )

    def record_write(self, obj: Any, attr: str) -> None:
        """Eraser write-write lockset check for ``obj.attr``."""
        if attr.startswith("_idgsan"):
            return
        ident = threading.get_ident()
        held = frozenset(id(lock) for lock in _held_locks())
        with self._state_lock:
            fields = obj.__dict__.get("_idgsan_fields")
            if fields is None:
                fields = {}
                object.__setattr__(obj, "_idgsan_fields", fields)
            state = fields.get(attr)
            if state is None:
                fields[attr] = _FieldState(owner=ident)
                return
            if not state.shared:
                if state.owner == ident:
                    return  # still exclusive to the constructing thread
                # first write from a second thread: the candidate lockset is
                # what *it* holds (the exclusive phase is initialisation and
                # carries no constraint — classic Eraser)
                state.shared = True
                state.lockset = held
            else:
                state.lockset &= held
            if not state.lockset and not state.reported:
                state.reported = True
                self.report(
                    "race",
                    f"unsynchronised write to {type(obj).__name__}.{attr}: "
                    "no common lock protects this field across its writer "
                    "threads",
                )

    # --------------------------------------------------------------- arenas

    def note_arena_alloc(self, arena: Any) -> None:
        ident = threading.get_ident()
        owner = getattr(arena, "_idgsan_owner", None)
        if owner is None:
            object.__setattr__(arena, "_idgsan_owner", ident)
        elif owner != ident:
            self.report(
                "arena",
                "ScratchArena used from two threads: arenas are "
                "single-thread by contract (obtain one via thread_arena(), "
                "or release() before handing it off)",
            )

    def note_arena_reset(self, arena: Any) -> None:
        object.__setattr__(arena, "_idgsan_owner", None)

    # ------------------------------------------------------------- watchdog

    def _thread_names(self) -> dict[int, str]:
        return {t.ident: t.name for t in threading.enumerate() if t.ident}

    def _format_stacks(self, idents: set[int]) -> str:
        names = self._thread_names()
        frames = sys._current_frames()
        parts = []
        for ident in sorted(idents):
            frame = frames.get(ident)
            if frame is None:
                continue
            stack = "".join(traceback.format_stack(frame))
            parts.append(f"--- thread {names.get(ident, ident)} ---\n{stack}")
        return "".join(parts)

    def _force_abort(self) -> None:
        self._abort.set()
        for channel in list(self._channels):
            channel.abort()
        for gate in list(self._gates):
            gate.abort()

    def _find_lock_cycle(self) -> list[tuple[int, Any, int]] | None:
        """A cycle in the thread->lock->owner wait-for graph, if any."""
        edges: dict[int, tuple[Any, int]] = {}
        for ident, lock in list(self._lock_waiting.items()):
            owner = getattr(lock, "owner", None)
            if owner is not None and owner != ident:
                edges[ident] = (lock, owner)
        for start in edges:
            chain: list[tuple[int, Any, int]] = []
            position: dict[int, int] = {}
            node = start
            while node in edges and node not in position:
                position[node] = len(chain)
                lock, nxt = edges[node]
                chain.append((node, lock, nxt))
                node = nxt
            if node in position:
                return chain[position[node]:]
        return None

    def _watchdog_sweep(self, now: float) -> None:
        if self._deadlock_reported:
            return
        cycle = self._find_lock_cycle()
        if cycle is not None:
            names = self._thread_names()
            desc = " -> ".join(
                f"{names.get(ident, ident)} waits {lock.label} "
                f"(held by {names.get(owner, owner)})"
                for ident, lock, owner in cycle
            )
            self._deadlock_reported = True
            self.report(
                "deadlock",
                f"lock-order deadlock: {desc}",
                details=self._format_stacks({i for i, _, _ in cycle}),
            )
            self._force_abort()
            return
        # global stall: no channel/gate op completed for stall_timeout while
        # at least one thread is blocked that long on a channel or gate
        ops = 0
        blocked: list[tuple[str, Any]] = []
        for channel in list(self._channels):
            ops += channel._n_put + channel._n_get
            snapshot = channel.waiters()
            for info in snapshot.put:
                blocked.append((f"put({channel.name})", info))
            for info in snapshot.get:
                blocked.append((f"get({channel.name})", info))
        for gate in list(self._gates):
            ops += gate.credits - gate._available
            for info in gate.waiters():
                blocked.append((f"acquire({gate.name})", info))
        if ops != self._last_ops:
            self._last_ops = ops
            self._last_progress = now
            return
        stalled = [
            (op, info)
            for op, info in blocked
            if now - info.since > self.stall_timeout
        ]
        if stalled and now - self._last_progress > self.stall_timeout:
            desc = "; ".join(
                f"{info.name} blocked {now - info.since:.1f}s in {op}"
                for op, info in stalled
            )
            self._deadlock_reported = True
            self.report(
                "deadlock",
                f"pipeline stalled with zero progress: {desc}",
                details=self._format_stacks({info.ident for _, info in stalled}),
            )
            self._force_abort()


class _Watchdog(threading.Thread):
    def __init__(self, sanitizer: Sanitizer) -> None:
        super().__init__(name="idgsan-watchdog", daemon=True)
        self._sanitizer = sanitizer
        self._halt = threading.Event()  # Thread reserves the name _stop

    def run(self) -> None:
        from repro.runtime.telemetry import monotonic

        while not self._halt.wait(self._sanitizer.watchdog_interval):
            self._sanitizer._watchdog_sweep(monotonic())

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


# ---------------------------------------------------------------- primitives


class TrackedLock:
    """A ``threading.Lock`` wrapper that maintains the per-thread lockset,
    exposes its owner to the watchdog, and aborts instead of hanging."""

    def __init__(self, sanitizer: Sanitizer, label: str) -> None:
        self._lock = threading.Lock()
        self._sanitizer = sanitizer
        self.label = label
        self.owner: int | None = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        sanitizer = self._sanitizer
        ident = threading.get_ident()
        if not blocking or timeout != -1:
            acquired = self._lock.acquire(blocking, timeout)
        else:
            sanitizer._lock_waiting[ident] = self
            try:
                while not self._lock.acquire(timeout=_WAIT_SLICE):
                    sanitizer.check_abort()
            finally:
                sanitizer._lock_waiting.pop(ident, None)
            acquired = True
        if acquired:
            self.owner = ident
            sanitizer._push(self)
        return acquired

    def release(self) -> None:
        self._sanitizer._pop(self)
        self.owner = None
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class TrackedCondition:
    """A ``threading.Condition`` wrapper with the same tracking contract as
    :class:`TrackedLock` (lockset maintenance through ``wait``'s release/
    re-acquire included)."""

    def __init__(self, sanitizer: Sanitizer, label: str) -> None:
        self._cond = threading.Condition()
        self._sanitizer = sanitizer
        self.label = label
        self.owner: int | None = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        sanitizer = self._sanitizer
        ident = threading.get_ident()
        if not blocking or timeout != -1:
            acquired = self._cond.acquire(blocking, timeout)
        else:
            sanitizer._lock_waiting[ident] = self
            try:
                while not self._cond.acquire(timeout=_WAIT_SLICE):
                    sanitizer.check_abort()
            finally:
                sanitizer._lock_waiting.pop(ident, None)
            acquired = True
        if acquired:
            self.owner = ident
            sanitizer._push(self)
        return acquired

    def release(self) -> None:
        self._sanitizer._pop(self)
        self.owner = None
        self._cond.release()

    def __enter__(self) -> "TrackedCondition":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def wait(self, timeout: float | None = None) -> bool:
        sanitizer = self._sanitizer
        sanitizer._pop(self)
        self.owner = None
        try:
            if timeout is not None:
                return self._cond.wait(timeout)
            # One bounded slice, then return as a spurious wakeup.  Callers
            # re-check their predicate in a while loop (the Condition
            # contract), so this stays correct — whereas looping here until
            # a notify is *observed* would lose any notify_all that lands
            # between two slices (notify only wakes threads parked in wait),
            # deadlocking an otherwise-healthy pipeline.
            notified = self._cond.wait(_WAIT_SLICE)
            sanitizer.check_abort()
            return notified
        finally:
            self.owner = threading.get_ident()
            sanitizer._push(self)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()


# ------------------------------------------------------------- installation

#: (cls, attr) -> original callable, for uninstall.  Necessarily mutable
#: module state: it is the undo log of the monkeypatches.
_patched: dict[tuple[type, str], Any] = {}  # idglint: disable=IDG004
_watchdog: _Watchdog | None = None


def _patch(cls: type, attr: str, wrapper: Any) -> None:
    key = (cls, attr)
    if key not in _patched:
        _patched[key] = cls.__dict__.get(attr)
        setattr(cls, attr, wrapper)


def _tracking_setattr(cls: type) -> Callable[[Any, str, Any], None]:
    original = cls.__setattr__

    def __setattr__(self: Any, name: str, value: Any) -> None:
        sanitizer = CURRENT
        if sanitizer is not None:
            sanitizer.record_write(self, name)
        original(self, name, value)

    return __setattr__


def _wrap_stage_fn(name: str, fn: Callable[[int, Any], Any]) -> Callable[[int, Any], Any]:
    def wrapped(seq: int, payload: Any) -> Any:
        previous = getattr(_tls, "stage", None)
        _tls.stage = name
        try:
            return fn(seq, payload)
        finally:
            _tls.stage = previous

    wrapped.__name__ = getattr(fn, "__name__", "stage")
    return wrapped


def _wrap_source(name: str, items: Any) -> Iterator[Any]:
    iterator = iter(items)
    while True:
        previous = getattr(_tls, "stage", None)
        _tls.stage = name
        try:
            try:
                item = next(iterator)
            except StopIteration:
                return
        finally:
            _tls.stage = previous
        yield item


def install(sanitizer: Sanitizer | None = None) -> Sanitizer:
    """Patch the runtime classes and start the watchdog.

    Idempotent on the patches; the active :class:`Sanitizer` is replaced by
    ``sanitizer`` (or a fresh one).  Objects constructed while installed are
    tracked; pre-existing objects are not.
    """
    global CURRENT, _watchdog
    from repro.core.scratch import ScratchArena
    from repro.runtime.graph import StageGraph
    from repro.runtime.queues import Channel, CreditGate
    from repro.runtime.telemetry import Telemetry

    sanitizer = sanitizer if sanitizer is not None else Sanitizer()
    CURRENT = sanitizer

    channel_init = Channel.__init__

    def patched_channel_init(self: Any, *args: Any, **kwargs: Any) -> None:
        channel_init(self, *args, **kwargs)
        active = CURRENT
        if active is not None:
            self._cond = TrackedCondition(active, f"Channel({self.name})._cond")
            active._channels.add(self)

    gate_init = CreditGate.__init__

    def patched_gate_init(self: Any, *args: Any, **kwargs: Any) -> None:
        gate_init(self, *args, **kwargs)
        active = CURRENT
        if active is not None:
            self._cond = TrackedCondition(active, f"CreditGate({self.name})._cond")
            active._gates.add(self)

    telemetry_init = Telemetry.__init__

    def patched_telemetry_init(self: Any, *args: Any, **kwargs: Any) -> None:
        telemetry_init(self, *args, **kwargs)
        active = CURRENT
        if active is not None:
            self._lock = TrackedLock(active, "Telemetry._lock")

    graph_init = StageGraph.__init__

    def patched_graph_init(self: Any, *args: Any, **kwargs: Any) -> None:
        graph_init(self, *args, **kwargs)
        active = CURRENT
        if active is not None:
            self._error_lock = TrackedLock(
                active, f"StageGraph({self.name})._error_lock"
            )

    add_stage = StageGraph.add_stage

    def patched_add_stage(
        self: Any, name: str, fn: Callable[[int, Any], Any], workers: int = 1
    ) -> None:
        add_stage(self, name, _wrap_stage_fn(name, fn), workers=workers)

    add_source = StageGraph.add_source

    def patched_add_source(self: Any, name: str, items: Any) -> None:
        add_source(self, name, _wrap_source(name, items))

    arena_take = ScratchArena.take

    def patched_take(self: Any, *args: Any, **kwargs: Any) -> Any:
        active = CURRENT
        if active is not None:
            active.note_arena_alloc(self)
        return arena_take(self, *args, **kwargs)

    arena_trim = ScratchArena.trim

    def patched_trim(self: Any) -> int:
        active = CURRENT
        if active is not None:
            active.note_arena_reset(self)
        return arena_trim(self)

    arena_release = ScratchArena.release

    def patched_release(self: Any) -> int:
        active = CURRENT
        if active is not None:
            active.note_arena_reset(self)
        return arena_release(self)

    _patch(Channel, "__init__", patched_channel_init)
    _patch(CreditGate, "__init__", patched_gate_init)
    _patch(Telemetry, "__init__", patched_telemetry_init)
    _patch(StageGraph, "__init__", patched_graph_init)
    _patch(StageGraph, "add_stage", patched_add_stage)
    _patch(StageGraph, "add_source", patched_add_source)
    _patch(ScratchArena, "take", patched_take)
    _patch(ScratchArena, "trim", patched_trim)
    _patch(ScratchArena, "release", patched_release)
    # ``zeros`` calls the (patched) ``take``, so it needs no wrapper of its
    # own; a second one would double-check ownership per allocation.
    for cls in (Channel, CreditGate, Telemetry, StageGraph):
        _patch(cls, "__setattr__", _tracking_setattr(cls))
    sanitizer._tracked_classes = [Channel, CreditGate, Telemetry, StageGraph]

    if _watchdog is None:
        _watchdog = _Watchdog(sanitizer)
        _watchdog.start()
    else:
        _watchdog._sanitizer = sanitizer
    return sanitizer


def uninstall() -> None:
    """Restore every patched method and stop the watchdog."""
    global CURRENT, _watchdog
    if _watchdog is not None:
        _watchdog.stop()
        _watchdog = None
    for (cls, attr), original in _patched.items():
        if original is None:
            # the attribute was inherited (e.g. object.__setattr__): remove
            # the override to re-expose it
            if attr in cls.__dict__:
                delattr(cls, attr)
        else:
            setattr(cls, attr, original)
    _patched.clear()
    CURRENT = None


def track_class(cls: type) -> None:
    """Add Eraser write tracking to an arbitrary class (tests, user code)."""
    _patch(cls, "__setattr__", _tracking_setattr(cls))


def maybe_install_from_env() -> Sanitizer | None:
    """Install iff ``IDG_SANITIZE`` is truthy; returns the sanitizer."""
    if sanitizer_enabled() and CURRENT is None:
        return install()
    return CURRENT


@contextmanager
def sanitized(
    stall_timeout: float = 30.0, watchdog_interval: float = 0.25
) -> Iterator[Sanitizer]:
    """Context manager: install a fresh sanitizer, restore the previous
    state on exit (the previous sanitizer is reinstated if one was active)."""
    global CURRENT
    previous = CURRENT
    sanitizer = install(
        Sanitizer(stall_timeout=stall_timeout, watchdog_interval=watchdog_interval)
    )
    try:
        yield sanitizer
    finally:
        if previous is None:
            uninstall()
        else:
            CURRENT = previous
            if _watchdog is not None:
                _watchdog._sanitizer = previous
