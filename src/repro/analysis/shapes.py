"""The idglint shape grammar.

A *shape spec* is a string describing the allowed shapes of an array, in the
same notation the codebase's numpydoc docstrings already use::

    (M, 3)                    fixed rank, symbol M bound on first use
    (M, 2, 2) | (M, 4)        alternatives (either layout accepted)
    (N**2, 3)                 integer power of a symbol (N bound by root)
    (n_times * n_channels, 3) product of two symbols
    (..., 2, 2)               leading ellipsis: any number of leading axes
    (C,)                      1-tuple (trailing comma as in Python)

Symbols bind on first use and must agree across every parameter of one call
(and the return value), so ``lmn: (N**2, 3)`` and ``taper: (N, N)`` assert a
relation between two arguments, not just their ranks.  Integer dimensions
must match exactly.

The grammar is deliberately tiny: it has to be readable inside a decorator,
checkable at runtime in a few microseconds, and cross-checkable statically
against docstrings by :mod:`repro.analysis.rules.idg006_doc_shapes`.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "ELLIPSIS",
    "ShapeSpecError",
    "parse_shape_spec",
    "canonical_alternatives",
    "format_alternatives",
    "match_shape",
]

#: Sentinel for a leading ``...`` (any number of leading axes).
ELLIPSIS = "..."

_NAME = r"[A-Za-z_]\w*"
_RE_INT = re.compile(r"^\d+$")
_RE_NAME = re.compile(rf"^{_NAME}$")
_RE_POW = re.compile(rf"^({_NAME})\*\*(\d+)$")
_RE_MUL = re.compile(rf"^({_NAME})\*({_NAME})$")


class ShapeSpecError(ValueError):
    """A shape spec string does not parse under the idglint shape grammar."""


def _parse_dim(token: str, position: int):
    token = token.replace(" ", "")
    if token == ELLIPSIS:
        if position != 0:
            raise ShapeSpecError("'...' is only allowed as the leading dimension")
        return ELLIPSIS
    if _RE_INT.match(token):
        return int(token)
    if _RE_NAME.match(token):
        return token
    m = _RE_POW.match(token)
    if m:
        power = int(m.group(2))
        if power < 1:
            raise ShapeSpecError(f"power must be >= 1 in {token!r}")
        return ("pow", m.group(1), power)
    m = _RE_MUL.match(token)
    if m:
        return ("mul", m.group(1), m.group(2))
    raise ShapeSpecError(f"invalid shape dimension {token!r}")


def _parse_alternative(alt: str) -> tuple:
    alt = alt.strip()
    if not (alt.startswith("(") and alt.endswith(")")):
        raise ShapeSpecError(f"shape must be parenthesised, got {alt!r}")
    inner = alt[1:-1].strip()
    if not inner:
        return ()
    tokens = [t.strip() for t in inner.split(",")]
    if tokens and tokens[-1] == "":  # trailing comma, e.g. "(C,)"
        tokens = tokens[:-1]
    if any(t == "" for t in tokens):
        raise ShapeSpecError(f"empty dimension in {alt!r}")
    return tuple(_parse_dim(t, i) for i, t in enumerate(tokens))


def parse_shape_spec(spec: str) -> list[tuple]:
    """Parse ``spec`` into a list of alternative dimension tuples."""
    alternatives = [_parse_alternative(a) for a in spec.split("|")]
    if not alternatives:
        raise ShapeSpecError("empty shape spec")
    return alternatives


def _format_dim(dim) -> str:
    if isinstance(dim, tuple):
        if dim[0] == "pow":
            return f"{dim[1]}**{dim[2]}"
        return f"{dim[1]}*{dim[2]}"
    return str(dim)


def _format_alternative(alt: tuple) -> str:
    if len(alt) == 1 and alt[0] != ELLIPSIS:
        return f"({_format_dim(alt[0])},)"
    return "(" + ", ".join(_format_dim(d) for d in alt) + ")"


def format_alternatives(alternatives: list[tuple]) -> str:
    return " | ".join(_format_alternative(a) for a in alternatives)


def canonical_alternatives(spec: str) -> frozenset[str]:
    """Canonical rendering of each alternative, for spec-vs-doc comparison."""
    return frozenset(_format_alternative(a) for a in parse_shape_spec(spec))


def _integer_root(value: int, power: int) -> int | None:
    if value < 0:
        return None
    if power == 2:
        root = math.isqrt(value)
        return root if root * root == value else None
    root = round(value ** (1.0 / power))
    for candidate in (root - 1, root, root + 1):
        if candidate >= 0 and candidate**power == value:
            return candidate
    return None


def _match_dim(dim, size: int, env: dict[str, int]) -> bool:
    if isinstance(dim, int):
        return size == dim
    if isinstance(dim, str):
        if dim in env:
            return env[dim] == size
        env[dim] = size
        return True
    kind, a, b = dim
    if kind == "pow":
        if a in env:
            return env[a] ** b == size
        root = _integer_root(size, b)
        if root is None:
            return False
        env[a] = root
        return True
    # product a*b: bind whichever symbol is still free, if determinable
    if a in env and b in env:
        return env[a] * env[b] == size
    if a in env:
        if env[a] == 0:
            return size == 0
        if size % env[a]:
            return False
        env[b] = size // env[a]
        return True
    if b in env:
        if env[b] == 0:
            return size == 0
        if size % env[b]:
            return False
        env[a] = size // env[b]
        return True
    return True  # neither symbol bound: any size is consistent


def _match_alternative(shape: tuple[int, ...], alt: tuple, env: dict[str, int]) -> bool:
    dims = alt
    if dims and dims[0] == ELLIPSIS:
        dims = dims[1:]
        if len(shape) < len(dims):
            return False
        shape = shape[len(shape) - len(dims):]
    elif len(shape) != len(dims):
        return False
    return all(_match_dim(d, s, env) for d, s in zip(dims, shape))


def match_shape(
    shape: tuple[int, ...], alternatives: list[tuple], env: dict[str, int]
) -> bool:
    """True if ``shape`` matches any alternative; binds symbols into ``env``.

    Alternatives are tried in order against a copy of ``env``; the first
    match commits its bindings, so symbols stay consistent across the
    parameters of one call.
    """
    for alt in alternatives:
        trial = dict(env)
        if _match_alternative(tuple(shape), alt, trial):
            env.clear()
            env.update(trial)
            return True
    return False
