"""Extract shape specs from numpydoc docstrings.

The codebase documents array shapes as double-backtick spans inside numpydoc
``Parameters`` / ``Returns`` sections::

    Parameters
    ----------
    visibilities:
        ``(M, 2, 2)`` or ``(M, 4)`` complex visibilities of the block.
    aterm_p, aterm_q:
        Optional ``(N, N, 2, 2)`` Jones fields; ``None`` means identity.

A backtick span counts as a shape only when the whole span is a parenthesised
group that parses under the idglint shape grammar — prose parentheticals,
``None``, code references and expressions like ``(u - u_mid, ...)`` are all
rejected by the parser and ignored.  IDG006 compares the shapes found here
against ``@shape_checked`` decorator specs.
"""

from __future__ import annotations

import re

from repro.analysis.shapes import ShapeSpecError, canonical_alternatives

__all__ = ["docstring_shapes"]

_BACKTICK_SPAN = re.compile(r"``([^`]+)``")
_SECTION_UNDERLINE = re.compile(r"^-{3,}\s*$")
_PARAM_HEADER = re.compile(
    r"^(?P<names>[A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*:(?P<type>.*)$"
)


def _shape_set(text: str) -> frozenset[str]:
    """Canonical shapes of every whole-span ``(...)`` backtick group."""
    shapes: set[str] = set()
    for span in _BACKTICK_SPAN.findall(text):
        span = span.strip()
        if not (span.startswith("(") and span.endswith(")")):
            continue
        try:
            shapes.update(canonical_alternatives(span))
        except ShapeSpecError:
            continue
    return frozenset(shapes)


def _split_sections(doc: str) -> dict[str, list[str]]:
    """numpydoc sections: name -> body lines (docstring already dedented)."""
    lines = doc.splitlines()
    sections: dict[str, list[str]] = {}
    current: list[str] | None = None
    i = 0
    while i < len(lines):
        if (
            i + 1 < len(lines)
            and _SECTION_UNDERLINE.match(lines[i + 1])
            and lines[i].strip()
            and not lines[i].startswith(" ")
        ):
            current = sections.setdefault(lines[i].strip(), [])
            i += 2
            continue
        if current is not None:
            current.append(lines[i])
        i += 1
    return sections


def docstring_shapes(doc: str | None) -> tuple[dict[str, frozenset[str]], frozenset[str]]:
    """Shapes documented per parameter, and in the Returns section.

    Returns ``(param_shapes, return_shapes)`` where ``param_shapes`` maps each
    documented parameter name to the canonical shape set found in its entry
    (names sharing one entry share the set).  Parameters whose entry contains
    no parseable shape are absent from the mapping.
    """
    if not doc:
        return {}, frozenset()
    sections = _split_sections(doc)

    param_shapes: dict[str, frozenset[str]] = {}
    body = sections.get("Parameters", [])
    entry_names: list[str] = []
    entry_lines: list[str] = []

    def flush() -> None:
        if not entry_names:
            return
        shapes = _shape_set("\n".join(entry_lines))
        if shapes:
            for name in entry_names:
                param_shapes[name] = shapes

    for line in body:
        header = _PARAM_HEADER.match(line)
        if header is not None and not line.startswith(" "):
            flush()
            entry_names = [n.strip() for n in header.group("names").split(",")]
            entry_lines = [header.group("type")]
        else:
            entry_lines.append(line)
    flush()

    return_shapes = _shape_set("\n".join(sections.get("Returns", [])))
    return param_shapes, return_shapes
