"""Shared concurrency models for the IDG1xx rule family.

The IDG100-series rules (:mod:`repro.analysis.rules`) all reason about the
same facts: which names are locks, which attributes those locks guard, which
locks a statement holds, and in what order functions acquire them.  This
module centralises that machinery so each rule stays a thin policy on top:

* **Annotation grammar** — two structured comments extend the inference:

  - ``# idglint: guarded-by(<lock>)`` on an attribute assignment declares
    that the attribute may only be mutated while holding ``self.<lock>``
    (or the named module-level lock);
  - ``# idglint: requires-lock(<lock>)`` on a ``def`` line declares that the
    function's *callers* hold the lock — its body is analysed as if the lock
    were held throughout, and IDG101 checks every resolvable call site.

* **Lock discovery** — an attribute or variable is a lock when it is
  assigned from a ``threading`` factory (``Lock``/``RLock``/``Condition``/
  ``Semaphore``/``BoundedSemaphore``) or when its name matches the
  ``_lock``/``_cond`` naming convention (:data:`LOCK_NAME_RE`).

* **Guard inference** — an attribute is *guarded* by lock L when annotated,
  or when any method mutates it inside ``with self.L:`` (construction in
  ``__init__`` is exempt from checking but still contributes inference).

* **Lock-order graphs** — per-function acquisition summaries (which locks a
  function may take, directly or through same-file calls) compose into a
  project-wide held->acquired edge set; cycles in that graph are the AB/BA
  inversions IDG103 reports.

Locks are identified by *canonical keys* that are stable across files:
``ClassName.attr`` for instance/class attribute locks, ``relpath:name`` for
module-level locks, ``relpath:func:name`` for function-local locks — so two
methods of one class taking ``self._lock`` then ``self._cond`` in opposite
orders collide in the graph even when they live in different files.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.engine import FileContext

__all__ = [
    "GUARDED_BY_RE",
    "REQUIRES_LOCK_RE",
    "LOCK_NAME_RE",
    "ClassModel",
    "FunctionScope",
    "LockModel",
    "build_lock_model",
    "iter_attr_mutations",
    "line_annotation",
]

GUARDED_BY_RE = re.compile(
    r"#\s*idglint:\s*guarded-by\(\s*([A-Za-z_][A-Za-z0-9_.]*)\s*\)"
)
REQUIRES_LOCK_RE = re.compile(
    r"#\s*idglint:\s*requires-lock\(\s*([A-Za-z_][A-Za-z0-9_.]*)\s*\)"
)

#: Names that *are* locks by convention, whatever they were assigned from.
LOCK_NAME_RE = re.compile(r"(^|_)(lock|cond|condition|mutex)$")

#: ``threading`` factories whose result is a lock-like context manager.
LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Method names that mutate their receiver in place (list/set/dict/deque).
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert", "add",
        "remove", "discard", "pop", "popleft", "popitem", "clear", "update",
        "setdefault", "sort", "reverse", "fill",
    }
)


def line_annotation(ctx: FileContext, lineno: int, regex: re.Pattern[str]) -> str | None:
    """The annotation argument on source line ``lineno`` (1-based), if any."""
    if 0 < lineno <= len(ctx.lines):
        match = regex.search(ctx.lines[lineno - 1])
        if match:
            return match.group(1)
    return None


def is_lock_name(name: str) -> bool:
    return bool(LOCK_NAME_RE.search(name))


def _lock_factory(node: ast.AST) -> str | None:
    """``"Lock"``/``"RLock"``/... when ``node`` is a ``threading`` factory
    call (``threading.Lock()`` or a bare imported ``Lock()``)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "threading" and func.attr in LOCK_FACTORIES:
            return func.attr
    if isinstance(func, ast.Name) and func.id in LOCK_FACTORIES:
        return func.id
    return None


@dataclass
class ClassModel:
    """Lock/guard facts about one class."""

    name: str
    node: ast.ClassDef
    #: lock attribute name -> factory name ("Lock", "RLock", ...) or
    #: ``"?"`` when only the naming convention identified it.
    locks: dict[str, str] = field(default_factory=dict)
    #: guarded attribute -> owning lock attribute.
    guards: dict[str, str] = field(default_factory=dict)
    #: attributes whose guard came from an explicit annotation.
    annotated: set[str] = field(default_factory=set)
    #: method name -> FunctionDef (direct children only).
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )


@dataclass
class FunctionScope:
    """Lexical facts about one function (methods included)."""

    qualname: str  # "Class.method" / "func" / "outer.<locals>.inner"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None
    parent: "FunctionScope | None"
    #: names bound in this scope (assignments + parameters).
    bindings: set[str] = field(default_factory=set)
    #: local lock name -> factory name.
    local_locks: dict[str, str] = field(default_factory=dict)
    #: canonical keys of locks asserted held via ``requires-lock``.
    requires: tuple[str, ...] = ()


class LockModel:
    """Every lock/guard/scope fact of one parsed file."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.classes: dict[str, ClassModel] = {}
        #: module-level lock name -> factory name.
        self.module_locks: dict[str, str] = {}
        self.scopes: dict[ast.AST, FunctionScope] = {}
        self.by_qualname: dict[str, FunctionScope] = {}
        self._build()

    # -------------------------------------------------------------- building

    def _build(self) -> None:
        self._collect_module_locks()
        self._collect_scopes()
        self._collect_classes()
        self._resolve_requires()

    def _collect_module_locks(self) -> None:
        for node in self.ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            factory = _lock_factory(value)
            for target in targets:
                if isinstance(target, ast.Name):
                    if factory is not None:
                        self.module_locks[target.id] = factory
                    elif is_lock_name(target.id):
                        self.module_locks[target.id] = "?"

    def _collect_scopes(self) -> None:
        ctx = self.ctx

        def visit(node: ast.AST, qual: str, cls: str | None,
                  parent: FunctionScope | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, f"{qual}{child.name}.", child.name, parent)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scope = FunctionScope(
                        qualname=f"{qual}{child.name}",
                        node=child, class_name=cls, parent=parent,
                    )
                    args = child.args
                    for arg in (
                        *args.posonlyargs, *args.args, *args.kwonlyargs,
                        *([args.vararg] if args.vararg else []),
                        *([args.kwarg] if args.kwarg else []),
                    ):
                        scope.bindings.add(arg.arg)
                    self._collect_local_bindings(child, scope)
                    self.scopes[child] = scope
                    self.by_qualname[scope.qualname] = scope
                    visit(child, f"{scope.qualname}.<locals>.", None, scope)
                else:
                    visit(child, qual, cls, parent)

        visit(ctx.tree, "", None, None)

    def _collect_local_bindings(
        self, fn: ast.AST, scope: FunctionScope
    ) -> None:
        """Names assigned directly in ``fn`` (not in nested functions)."""

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                visit(child)
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        scope.bindings.add(target.id)
                        factory = _lock_factory(node.value)
                        if factory is not None:
                            scope.local_locks[target.id] = factory
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                scope.bindings.add(node.target.id)
                if node.value is not None:
                    factory = _lock_factory(node.value)
                    if factory is not None:
                        scope.local_locks[node.target.id] = factory
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                scope.bindings.add(node.target.id)
            elif isinstance(node, ast.withitem) and isinstance(
                node.optional_vars, ast.Name
            ):
                scope.bindings.add(node.optional_vars.id)

        visit(fn)

    def _collect_classes(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            model = ClassModel(name=node.name, node=node)
            self.classes[node.name] = model
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    model.methods[child.name] = child
                # dataclass-style class-body lock declarations:
                #   _lock: threading.Lock = field(default_factory=threading.Lock)
                elif isinstance(child, (ast.Assign, ast.AnnAssign)):
                    for name, value in self._class_body_targets(child):
                        factory = _lock_factory(value) or self._field_factory(value)
                        if factory is not None:
                            model.locks[name] = factory
                        elif is_lock_name(name):
                            model.locks[name] = "?"
            self._collect_instance_locks(model)
            self._collect_guards(model)

    @staticmethod
    def _class_body_targets(
        node: ast.Assign | ast.AnnAssign,
    ) -> list[tuple[str, ast.AST | None]]:
        if isinstance(node, ast.Assign):
            return [
                (t.id, node.value) for t in node.targets if isinstance(t, ast.Name)
            ]
        if isinstance(node.target, ast.Name):
            return [(node.target.id, node.value)]
        return []

    @staticmethod
    def _field_factory(value: ast.AST | None) -> str | None:
        """Factory name for ``field(default_factory=threading.Lock)``."""
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "field"
        ):
            for kw in value.keywords:
                if kw.arg == "default_factory":
                    node = kw.value
                    if isinstance(node, ast.Attribute) and isinstance(
                        node.value, ast.Name
                    ):
                        if (
                            node.value.id == "threading"
                            and node.attr in LOCK_FACTORIES
                        ):
                            return node.attr
                    if isinstance(node, ast.Name) and node.id in LOCK_FACTORIES:
                        return node.id
        return None

    def _collect_instance_locks(self, model: ClassModel) -> None:
        for method in model.methods.values():
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                factory = _lock_factory(value)
                for target in targets:
                    attr = self._self_attr(target)
                    if attr is None:
                        continue
                    if factory is not None:
                        model.locks[attr] = factory
                    elif is_lock_name(attr) and attr not in model.locks:
                        model.locks[attr] = "?"

    def _collect_guards(self, model: ClassModel) -> None:
        # explicit guarded-by annotations win over inference
        for method in model.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    continue
                lock = line_annotation(self.ctx, node.lineno, GUARDED_BY_RE)
                if lock is None:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = self._self_attr(target)
                    if attr is not None:
                        model.guards[attr] = lock.removeprefix("self.")
                        model.annotated.add(attr)
        # inference: an attribute mutated at least once under a class lock
        # is guarded by (the innermost of) the lock(s) held there
        for method in model.methods.values():
            scope = self.scopes.get(method)
            for attr, node, _kind in iter_attr_mutations(
                method, ("self", model.name)
            ):
                if attr in model.annotated or attr in model.locks:
                    continue
                held = self.held_locks(node, scope)
                class_held = [
                    key for key in held
                    if key.startswith(f"{model.name}.")
                ]
                if class_held:
                    lock_attr = class_held[-1].split(".", 1)[1]
                    model.guards.setdefault(attr, lock_attr)

    def _resolve_requires(self) -> None:
        for scope in self.scopes.values():
            lock = line_annotation(self.ctx, scope.node.lineno, REQUIRES_LOCK_RE)
            if lock is None:
                continue
            name = lock.removeprefix("self.")
            cls = self._enclosing_class(scope)
            if cls is not None and (name in cls.locks or is_lock_name(name)):
                key: str | None = f"{cls.name}.{name}"
            else:
                key = self.lock_key(ast.Name(id=name, ctx=ast.Load()), scope)
            if key is not None:
                scope.requires = (*scope.requires, key)

    # ------------------------------------------------------------ resolution

    @staticmethod
    def _self_attr(node: ast.AST) -> str | None:
        """``"attr"`` for ``self.attr`` nodes."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def lock_key(self, expr: ast.AST, scope: FunctionScope | None) -> str | None:
        """Canonical identity of a lock expression, or None when unknown.

        ``self.X`` -> ``Class.X``; ``Class.X`` -> ``Class.X``;
        module lock ``NAME`` -> ``relpath:NAME``; function-local lock
        ``NAME`` -> ``relpath:defining_func:NAME`` (resolved through the
        lexical chain, so sibling closures sharing an outer lock unify).
        """
        relpath = self.ctx.relpath
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            owner, attr = expr.value.id, expr.attr
            if owner == "self":
                cls = self._enclosing_class(scope)
                if cls is not None and attr in cls.locks:
                    return f"{cls.name}.{attr}"
                if cls is not None and is_lock_name(attr):
                    return f"{cls.name}.{attr}"
                return None
            if owner in self.classes and attr in self.classes[owner].locks:
                return f"{owner}.{attr}"
            return None
        if isinstance(expr, ast.Name):
            name = expr.id
            current = scope
            while current is not None:
                if name in current.bindings:
                    return f"{relpath}:{current.qualname}:{name}"
                current = current.parent
            if name in self.module_locks:
                return f"{relpath}:{name}"
            if is_lock_name(name):
                return f"{relpath}:{name}"
        return None

    def _enclosing_class(self, scope: FunctionScope | None) -> ClassModel | None:
        current = scope
        while current is not None:
            if current.class_name is not None:
                return self.classes.get(current.class_name)
            current = current.parent
        return None

    def lock_factory_for_key(self, key: str) -> str:
        """``"Lock"``/``"RLock"``/``"?"`` for a canonical key from this file."""
        if ":" in key:
            name = key.rsplit(":", 1)[1]
            if key.count(":") == 1 and name in self.module_locks:
                return self.module_locks[name]
            for scope in self.scopes.values():
                if key == f"{self.ctx.relpath}:{scope.qualname}:{name}":
                    return scope.local_locks.get(name, "?")
            return "?"
        cls_name, _, attr = key.partition(".")
        cls = self.classes.get(cls_name)
        if cls is not None:
            return cls.locks.get(attr, "?")
        return "?"

    def looks_like_lock(self, expr: ast.AST, scope: FunctionScope | None) -> bool:
        """Syntactic test: is this ``with`` context expression a lock?"""
        if self.lock_key(expr, scope) is not None:
            return True
        terminal = None
        if isinstance(expr, ast.Attribute):
            terminal = expr.attr
        elif isinstance(expr, ast.Name):
            terminal = expr.id
        return terminal is not None and is_lock_name(terminal)

    # ------------------------------------------------------------- held locks

    def enclosing_scope(self, node: ast.AST) -> FunctionScope | None:
        """The function scope ``node``'s code executes in (not one merely
        containing its definition text — nested defs start a new scope)."""
        if node in self.scopes:
            return self.scopes[node]
        for ancestor in self.ctx.ancestors(node):
            if ancestor in self.scopes:
                return self.scopes[ancestor]
        return None

    def held_locks(
        self, node: ast.AST, scope: FunctionScope | None
    ) -> list[str]:
        """Canonical keys of locks held at ``node``, outermost first —
        the enclosing ``with`` chain inside the current function, plus any
        ``requires-lock`` assertion on the function itself."""
        held: list[str] = []
        boundary = scope.node if scope is not None else None
        chain = []
        for ancestor in self.ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                chain.append(ancestor)
            if ancestor is boundary:
                break
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                break  # nested definition boundary: outer withs don't apply
        for with_node in reversed(chain):
            for item in with_node.items:
                key = self.lock_key(item.context_expr, scope)
                if key is not None:
                    held.append(key)
        if scope is not None:
            held = [*scope.requires, *held]
        return held


def build_lock_model(ctx: FileContext) -> LockModel:
    """Build (and cache on the context) the file's :class:`LockModel`."""
    cached = getattr(ctx, "_lock_model", None)
    if cached is None:
        cached = LockModel(ctx)
        ctx._lock_model = cached  # type: ignore[attr-defined]
    return cached


def iter_attr_mutations(
    fn: ast.AST, owners: tuple[str, ...] = ("self",)
) -> Iterator[tuple[str, ast.AST, str]]:
    """Yield ``(attr, node, kind)`` for every mutation of ``<owner>.attr``
    inside ``fn`` (``owners`` is usually ``("self",)``, or a class name for
    class-attribute mutations), not descending into nested definitions.

    Kinds: ``"write"`` (assign/augassign/del, including subscript stores
    like ``self.d[k] = v``) and ``"mutate"`` (an in-place mutator method
    call such as ``self.items.append(x)``).
    """

    def owner_attr(node: ast.AST) -> str | None:
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in owners:
                return node.attr
        return None

    def walk(node: ast.AST) -> Iterator[tuple[str, ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield from walk(child)
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                base = target
                while isinstance(base, (ast.Subscript, ast.Starred)):
                    base = base.value
                attr = owner_attr(base)
                if attr is not None:
                    yield (attr, node, "write")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                attr = owner_attr(base)
                if attr is not None:
                    yield (attr, node, "write")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                attr = owner_attr(node.func.value)
                if attr is not None:
                    yield (attr, node, "mutate")

    yield from walk(fn)
