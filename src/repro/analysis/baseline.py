"""Baseline (grandfathering) support for idglint.

A baseline is a committed JSON file recording known violations so the lint
gate can fail on *new* debt only.  Entries are fingerprinted by
``(path, code, snippet)`` — the stripped source line rather than the line
number — so unrelated edits above a grandfathered violation do not churn the
baseline.  Matching is multiset-style: two identical offending lines need two
entries.

``python -m repro.analysis --write-baseline`` regenerates the file;
unmatched entries are reported as *stale* so the baseline shrinks as debt is
paid down.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.engine import Violation

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

DEFAULT_BASELINE_NAME = "idglint-baseline.json"

_VERSION = 1


def _fingerprint(entry: dict) -> tuple[str, str, str]:
    return (str(entry["path"]), str(entry["code"]), str(entry.get("snippet", "")))


def load_baseline(path: str | Path) -> list[dict]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(f"unsupported baseline version {data.get('version')!r}")
    entries = data.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError("baseline 'entries' must be a list")
    return entries


def write_baseline(path: str | Path, violations: Iterable[Violation]) -> None:
    entries = [
        {
            "path": v.path,
            "code": v.code,
            "line": v.line,
            "snippet": v.snippet,
            "message": v.message,
        }
        for v in sorted(violations)
    ]
    payload = {"version": _VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    violations: Sequence[Violation], entries: Sequence[dict]
) -> tuple[list[Violation], list[dict]]:
    """Split ``violations`` against the baseline.

    Returns ``(new, stale)``: violations not covered by the baseline, and
    baseline entries that no longer match anything (fixed or moved debt).
    """
    budget = Counter(_fingerprint(entry) for entry in entries)
    new: list[Violation] = []
    for violation in violations:
        key = (violation.path, violation.code, violation.snippet)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            new.append(violation)
    stale: list[dict] = []
    remaining = dict(budget)
    for entry in entries:
        key = _fingerprint(entry)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            stale.append(entry)
    return new, stale
