"""Opt-in runtime shape contracts for kernel entry points.

The decorator :func:`shape_checked` attaches a shape spec (see
:mod:`repro.analysis.shapes`) to a function and — when checking is enabled —
validates every array argument and the return value against it, with symbol
bindings shared across the whole call::

    @shape_checked(
        visibilities="(M, 2, 2) | (M, 4)",
        uvw_rel_wl="(M, 3)",
        lmn="(N**2, 3)",
        taper="(N, N)",
        returns="(N, N, 2, 2)",
    )
    def gridder_subgrid(visibilities, uvw_rel_wl, lmn, taper, ...): ...

Checking is off by default and the decorator is then a *zero-cost no-op*: it
only records the spec on ``fn.__shape_spec__`` (for tooling) and returns the
function unchanged, so production call paths pay nothing.  It is enabled by
setting ``IDGLINT_SHAPE_CHECKS=1`` in the environment *before* the kernel
modules are imported (the test suite does this in ``tests/conftest.py``), or
programmatically with :func:`enable_shape_checks` before importing.

``None`` arguments are skipped (optional A-terms), as are parameters without
a spec.  Violations raise :class:`ShapeContractError` naming the argument,
the offending shape, the spec, and the symbol bindings established so far.

The static rule IDG006 (:mod:`repro.analysis.rules.idg006_doc_shapes`)
cross-checks these specs against the numpydoc shapes in the docstring, so the
decorator, the docs, and the runtime check cannot drift apart silently.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, TypeVar

import numpy as np

from repro.analysis.shapes import format_alternatives, match_shape, parse_shape_spec

__all__ = [
    "ShapeContractError",
    "shape_checked",
    "shape_checks_enabled",
    "enable_shape_checks",
]

F = TypeVar("F", bound=Callable[..., Any])

#: Programmatic override; ``None`` defers to the environment variable.
_forced: bool | None = None

_ENV_VAR = "IDGLINT_SHAPE_CHECKS"
_TRUTHY = ("1", "true", "yes", "on")


class ShapeContractError(ValueError):
    """An array argument or return value violates a declared shape contract."""


def enable_shape_checks(enabled: bool = True) -> None:
    """Force shape checking on (or off) for *subsequently imported* kernels.

    Decoration happens at import time, so call this before importing the
    modules you want checked; already-decorated functions are unaffected.
    """
    global _forced
    _forced = enabled


def shape_checks_enabled() -> bool:
    if _forced is not None:
        return _forced
    return os.environ.get(_ENV_VAR, "").strip().lower() in _TRUTHY


def shape_checked(*, returns: str | None = None, **param_specs: str) -> Callable[[F], F]:
    """Declare (and optionally enforce) array-shape contracts on a function.

    Keyword arguments map parameter names to shape specs; ``returns`` (if
    given) constrains the return value using the same symbol bindings.
    """
    parsed = {name: parse_shape_spec(spec) for name, spec in param_specs.items()}
    parsed_returns = parse_shape_spec(returns) if returns is not None else None

    def decorate(fn: F) -> F:
        spec_record = {"params": dict(param_specs), "returns": returns}
        signature = inspect.signature(fn)
        unknown = set(parsed) - set(signature.parameters)
        if unknown:
            raise TypeError(
                f"shape_checked({fn.__qualname__}): spec names not in signature: "
                f"{sorted(unknown)}"
            )
        fn.__shape_spec__ = spec_record  # type: ignore[attr-defined]
        if not shape_checks_enabled():
            return fn

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = signature.bind(*args, **kwargs)
            env: dict[str, int] = {}
            for name, alternatives in parsed.items():
                if name not in bound.arguments:
                    continue
                value = bound.arguments[name]
                if value is None:
                    continue
                shape = np.shape(value)
                if not match_shape(shape, alternatives, env):
                    raise ShapeContractError(
                        f"{fn.__qualname__}: argument {name!r} has shape "
                        f"{tuple(shape)}, expected "
                        f"{format_alternatives(alternatives)}"
                        f"{_bindings(env)}"
                    )
            result = fn(*args, **kwargs)
            if parsed_returns is not None and result is not None:
                shape = np.shape(result)
                if not match_shape(shape, parsed_returns, env):
                    raise ShapeContractError(
                        f"{fn.__qualname__}: return value has shape "
                        f"{tuple(shape)}, expected "
                        f"{format_alternatives(parsed_returns)}"
                        f"{_bindings(env)}"
                    )
            return result

        wrapper.__shape_spec__ = spec_record  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def _bindings(env: dict[str, int]) -> str:
    if not env:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(env.items()))
    return f" (bound: {inner})"
