"""idglint — codebase-specific static analysis and runtime shape contracts.

Two halves, one invariant catalogue:

* **Static**: an AST lint engine (:mod:`repro.analysis.engine`) with rules
  IDG001–IDG006 (:mod:`repro.analysis.rules`) enforcing the dtype, hot-loop
  and purity conventions the paper's performance argument rests on.  Run it
  with ``python -m repro.analysis src/repro``; the pytest gate in
  ``tests/analysis/test_lint_clean.py`` makes it part of tier-1.
* **Runtime**: the opt-in :func:`shape_checked` decorator
  (:mod:`repro.analysis.contracts`) validating ndim/axis-size relations
  against the same shape grammar the docstrings use, enabled in tests and a
  zero-cost no-op otherwise.
"""

from repro.analysis.contracts import (
    ShapeContractError,
    enable_shape_checks,
    shape_checked,
    shape_checks_enabled,
)
from repro.analysis.engine import (
    DEFAULT_CONFIG,
    LintConfig,
    Violation,
    lint_paths,
    lint_source,
)

__all__ = [
    "ShapeContractError",
    "enable_shape_checks",
    "shape_checked",
    "shape_checks_enabled",
    "DEFAULT_CONFIG",
    "LintConfig",
    "Violation",
    "lint_paths",
    "lint_source",
]
