"""The idglint command line: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — clean (all violations baselined), 1 — new violations,
2 — usage error.  Stale baseline entries are reported but do not fail the
run (use ``--fail-stale`` to make them fatal, e.g. in CI).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import DEFAULT_CONFIG, lint_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="idglint — codebase-specific static analysis for the IDG "
        "reproduction (dtype, hot-loop, and shape-contract invariants)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", "--rules", dest="select", metavar="CODES",
        help="comma-separated rule codes to run (default: all); a family "
        "wildcard like IDG1xx selects every rule in that hundred-series",
    )
    parser.add_argument(
        "--root", default=".",
        help="directory violation paths are reported relative to (default: .)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME} under --root, "
        "if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current violations to the baseline file and exit 0",
    )
    parser.add_argument(
        "--fail-stale", action="store_true",
        help="exit 1 when the baseline contains stale (already-fixed) entries",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _resolve_baseline_path(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline:
        return Path(args.baseline)
    candidate = Path(args.root) / DEFAULT_BASELINE_NAME
    if candidate.exists() or args.write_baseline:
        return candidate
    return None


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        from repro.analysis.rules import ALL_RULES

        for rule in ALL_RULES:
            print(f"{rule.CODE}  {rule.SUMMARY}")
        return 0

    select = None
    if args.select:
        from repro.analysis.rules import RULES_BY_CODE

        requested = [code.strip().upper() for code in args.select.split(",")]
        expanded: list[str] = []
        unknown: list[str] = []
        for code in requested:
            if code.endswith("XX") and len(code) > 2:
                prefix = code[:-2]
                family = [c for c in RULES_BY_CODE if c.startswith(prefix)]
                if family:
                    expanded.extend(family)
                else:
                    unknown.append(code)
            elif code in RULES_BY_CODE:
                expanded.append(code)
            else:
                unknown.append(code)
        if unknown:
            print(
                f"error: unknown rule code(s): {', '.join(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        select = tuple(dict.fromkeys(expanded))

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    violations = lint_paths(
        args.paths, config=DEFAULT_CONFIG, root=args.root, select=select
    )

    baseline_path = _resolve_baseline_path(args)
    if args.write_baseline:
        if baseline_path is None:
            print("error: --write-baseline requires a baseline path", file=sys.stderr)
            return 2
        write_baseline(baseline_path, violations)
        print(f"baseline written: {baseline_path} ({len(violations)} entries)")
        return 0

    entries = load_baseline(baseline_path) if baseline_path else []
    new, stale = apply_baseline(violations, entries)

    if args.format == "json":
        payload = {
            "violations": [v.to_json() for v in new],
            "baselined": len(violations) - len(new),
            "stale_baseline": stale,
        }
        print(json.dumps(payload, indent=2))
    else:
        for violation in new:
            print(violation.format_text())
        for entry in stale:
            print(
                f"stale baseline entry: {entry['path']}: {entry['code']} "
                f"{entry.get('snippet', '')!r}"
            )
        summary = (
            f"{len(new)} new violation(s), "
            f"{len(violations) - len(new)} baselined, {len(stale)} stale"
        )
        print(summary if (new or stale or entries) else f"clean: {summary}")

    if new:
        return 1
    if stale and args.fail_stale:
        return 1
    return 0
