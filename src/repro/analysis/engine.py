"""The idglint engine: file walking, rule dispatch, suppression comments.

The engine is purely ``ast``-based (no imports of the linted code) so it can
run over broken or heavy modules alike.  Each rule lives in its own module
under :mod:`repro.analysis.rules` and exposes ``CODE``, ``SUMMARY`` and a
``check(ctx)`` generator; the engine parses each file once, hands every rule
the same :class:`FileContext`, and filters the resulting violations through
per-line suppression comments::

    table = np.empty(...)  # idglint: disable=IDG003  (bounded: 2 parts)

``disable=all`` silences every rule on that line.  Remaining violations can
be matched against a committed baseline (:mod:`repro.analysis.baseline`) so
grandfathered debt fails no builds while new debt does.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "LintConfig",
    "DEFAULT_CONFIG",
    "Violation",
    "FileContext",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(r"#\s*idglint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Rule code used for files that fail to parse.
PARSE_ERROR_CODE = "IDG000"


@dataclass(frozen=True)
class LintConfig:
    """Codebase-specific knobs shared by every rule."""

    #: Names ``numpy`` is imported under.
    numpy_aliases: tuple[str, ...] = ("np", "numpy")
    #: Path fragments marking *kernel* modules (IDG001/IDG005 scope).  A file
    #: is kernel code when any fragment occurs in its posix relpath; ``""``
    #: matches everything.
    kernel_roots: tuple[str, ...] = (
        "core/",
        "kernels/",
        "aterms/",
        "runtime/",
        "backends/",
        "parallel/",
        "service/",
    )
    #: Module(s) allowed to evaluate sine/cosine inside loops — the approved
    #: phasor kernels (IDG002 scope).  Matched with ``relpath.endswith``.
    phasor_modules: tuple[str, ...] = (
        "core/gridder.py",
        "core/degridder.py",
        "kernels/wkernel.py",
    )
    #: Files exempt from IDG001 (they *define* the dtype policy).
    dtype_policy_modules: tuple[str, ...] = ("constants.py",)
    trig_names: tuple[str, ...] = ("exp", "sin", "cos")
    alloc_names: tuple[str, ...] = (
        "zeros",
        "empty",
        "ones",
        "full",
        "concatenate",
        "stack",
        "zeros_like",
        "empty_like",
        "ones_like",
        "full_like",
    )
    dtype_literals: tuple[str, ...] = ("complex64", "complex128")
    # ---- IDG1xx concurrency-rule knobs ----
    #: Method calls that may block regardless of argument count (queue put,
    #: condition/event wait, thread/future join-alikes, file/serialisation
    #: I/O) — IDG102 scope.
    blocking_any_arg_methods: tuple[str, ...] = (
        "put", "wait", "sleep", "recv", "send",
        "dump", "save", "savez", "savez_compressed",
    )
    #: Method calls that only block when called with **no** positional
    #: arguments (disambiguates ``queue.get()`` from ``dict.get(k, d)`` and
    #: ``thread.join()`` from ``sep.join(parts)``).
    blocking_zero_arg_methods: tuple[str, ...] = (
        "get", "acquire", "result", "join", "read",
    )
    #: Plain function calls that perform blocking I/O.
    blocking_functions: tuple[str, ...] = ("open",)
    #: Substrings marking a function as a per-work-group hot path (IDG105
    #: flags threading-primitive construction there even outside loops).
    hot_path_markers: tuple[str, ...] = ("work_group", "per_item", "_bucket")
    #: Factories returning the calling thread's scratch arena (IDG104).
    arena_factories: tuple[str, ...] = ("thread_arena",)
    #: Arena methods whose result is a view into arena-owned memory.
    arena_view_methods: tuple[str, ...] = ("take", "zeros")


DEFAULT_CONFIG = LintConfig()


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule code anchored to a file position.

    ``snippet`` is the stripped source line, used as the (line-number-free)
    fingerprint for baseline matching.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    snippet: str = ""

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "snippet": self.snippet,
        }


class FileContext:
    """Everything a rule needs about one parsed file."""

    def __init__(self, relpath: str, source: str, config: LintConfig) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.source = source
        self.config = config
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # ------------------------------------------------------------ scoping
    def is_kernel_module(self) -> bool:
        return any(root in self.relpath for root in self.config.kernel_roots)

    def is_phasor_module(self) -> bool:
        return any(self.relpath.endswith(m) for m in self.config.phasor_modules)

    def is_dtype_policy_module(self) -> bool:
        return any(self.relpath.endswith(m) for m in self.config.dtype_policy_modules)

    # ------------------------------------------------------------ AST helpers
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = node
        while current in self._parents:
            current = self._parents[current]
            yield current

    def enclosing_loop(self, node: ast.AST) -> ast.AST | None:
        """Nearest enclosing ``for``/``while``, stopping at function scopes
        (a loop in an *outer* function does not make a nested function hot)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
                return ancestor
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return None
        return None

    def numpy_attr(self, node: ast.AST) -> str | None:
        """``"exp"`` for an ``np.exp`` / ``numpy.exp`` attribute node."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.config.numpy_aliases
        ):
            return node.attr
        return None

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Violation(self.relpath, line, col, code, message, snippet)


def suppressed_codes(lines: list[str]) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule codes suppressed on that line."""
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
            out[lineno] = codes
    return out


def _active_rules(select: tuple[str, ...] | None = None):
    from repro.analysis.rules import ALL_RULES

    if select is None:
        return ALL_RULES
    wanted = {code.strip().upper() for code in select}
    return tuple(rule for rule in ALL_RULES if rule.CODE in wanted)


def _lint_contexts(
    contexts: list[FileContext],
    select: tuple[str, ...] | None = None,
) -> list[Violation]:
    """Run every active rule over the parsed contexts and filter suppressions.

    Per-file rules (``check(ctx)``) run on each context independently;
    project rules (``check_project(contexts)``) see every context at once —
    that is what makes interprocedural analyses like the IDG103 lock-order
    graph possible inside a per-file engine.
    """
    violations: list[Violation] = []
    rules = _active_rules(select)
    for rule in rules:
        checker = getattr(rule, "check", None)
        if checker is not None:
            for ctx in contexts:
                violations.extend(checker(ctx))
    for rule in rules:
        project_checker = getattr(rule, "check_project", None)
        if project_checker is not None:
            violations.extend(project_checker(contexts))
    suppressions = {
        ctx.relpath: suppressed_codes(ctx.lines) for ctx in contexts
    }
    kept = []
    for violation in violations:
        codes = suppressions.get(violation.path, {}).get(violation.line, ())
        if violation.code in codes or "ALL" in codes:
            continue
        kept.append(violation)
    return sorted(kept)


def _parse_error(relpath: str, exc: SyntaxError) -> Violation:
    return Violation(
        relpath.replace("\\", "/"),
        exc.lineno or 1,
        (exc.offset or 0) + 1 if exc.offset is not None else 1,
        PARSE_ERROR_CODE,
        f"syntax error: {exc.msg}",
    )


def lint_source(
    source: str,
    relpath: str,
    config: LintConfig = DEFAULT_CONFIG,
    select: tuple[str, ...] | None = None,
) -> list[Violation]:
    """Lint one in-memory source file; suppressions applied, sorted by position."""
    try:
        ctx = FileContext(relpath, source, config)
    except SyntaxError as exc:
        return [_parse_error(relpath, exc)]
    return _lint_contexts([ctx], select)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.suffix == ".py":
            files.append(path)
    # de-duplicate while preserving order
    seen: set[Path] = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Iterable[str | Path],
    config: LintConfig = DEFAULT_CONFIG,
    root: str | Path | None = None,
    select: tuple[str, ...] | None = None,
) -> list[Violation]:
    """Lint files/directories; paths in violations are relative to ``root``
    (default: the current working directory) so baselines are portable."""
    root_path = Path(root) if root is not None else Path.cwd()
    violations: list[Violation] = []
    contexts: list[FileContext] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        relpath = _relpath(path, root_path)
        try:
            contexts.append(FileContext(relpath, source, config))
        except SyntaxError as exc:
            violations.append(_parse_error(relpath, exc))
    violations.extend(_lint_contexts(contexts, select))
    return sorted(violations)
