"""IDG005 — public kernel functions must declare a return type.

Every public entry point in a kernel module (``core/``, ``kernels/``,
``aterms/``) is part of the dtype contract between pipeline stages — the
gridder hands ``complex64`` subgrids to the FFT stage, the FFT stage to the
adder.  A missing return annotation makes that contract docstring-only; this
rule requires ``-> np.ndarray`` (or better) on each of them.  Private
helpers, dunders and nested functions are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Violation

CODE = "IDG005"
SUMMARY = "public kernel function missing a return-type annotation"


def _public_functions(ctx: FileContext) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    def from_body(body: list[ast.stmt]) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    yield node
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                yield from from_body(node.body)

    yield from from_body(ctx.tree.body)


def check(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.is_kernel_module():
        return
    for node in _public_functions(ctx):
        if node.returns is None:
            yield ctx.violation(
                node,
                CODE,
                f"public kernel function {node.name}() has no return-type "
                "annotation; dtype/shape contracts must be machine-readable",
            )
