"""IDG003 — array allocation inside loops.

Work-item loops run tens of thousands of times per gridding pass; an
``np.zeros``/``np.empty``/``np.concatenate`` (and friends) inside one turns a
bounded working set into per-iteration allocator traffic.  The kernels
preallocate outputs outside their loops; this rule keeps it that way.  Loops
that are provably tiny (a 2-part polynomial fit, a 3-arm layout generator)
carry a ``# idglint: disable=IDG003`` with the bound in the comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Violation

CODE = "IDG003"
SUMMARY = "array-allocating numpy call inside a loop; preallocate outside"


def check(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.numpy_attr(node.func)
        if name in ctx.config.alloc_names and ctx.enclosing_loop(node) is not None:
            yield ctx.violation(
                node,
                CODE,
                f"np.{name} allocates inside a loop; preallocate outside the "
                "loop (or suppress with the loop's bound if it is not hot)",
            )
