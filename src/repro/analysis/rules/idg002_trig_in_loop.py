"""IDG002 — sine/cosine evaluation inside Python loops.

Sine/cosine is the first-class cost of image-domain gridding (the paper's
modified roofline treats it as its own operation class), and the codebase
concentrates every phasor evaluation in three approved modules where the
``exp`` feeds a BLAS-dispatched matrix product.  An ``np.exp`` / ``np.sin`` /
``np.cos`` inside a ``for``/``while`` loop anywhere else is either a
per-visibility Python loop (the exact anti-pattern the vectorised kernels
exist to avoid) or setup code that should say so with a suppression comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Violation

CODE = "IDG002"
SUMMARY = (
    "np.exp/np.sin/np.cos inside a loop outside the approved phasor modules"
)


def check(ctx: FileContext) -> Iterator[Violation]:
    if ctx.is_phasor_module():
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.numpy_attr(node.func)
        if name in ctx.config.trig_names and ctx.enclosing_loop(node) is not None:
            yield ctx.violation(
                node,
                CODE,
                f"np.{name} inside a loop outside the approved phasor modules; "
                "hoist it, vectorise the loop, or suppress with a justification",
            )
