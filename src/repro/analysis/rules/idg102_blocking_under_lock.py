"""IDG102 — blocking call made while a lock is held.

Holding a lock across a blocking operation turns local contention into
pipeline-wide stalls (every thread that needs the lock queues behind the
sleeper) and is one half of most real deadlocks: the classic failure is a
stage thread blocking on ``Channel.put`` while holding the lock its consumer
needs to drain the channel.  This rule flags, inside any ``with <lock>:``
region (or a ``# idglint: requires-lock`` function, whose whole body runs
locked):

* unbounded-wait methods whatever their arguments: ``put``/``wait``/
  ``sleep``/``recv``/``send`` and serialisation I/O (``dump``/``save``/...);
* methods that only block when called with no positional arguments —
  ``get()``/``acquire()``/``result()``/``join()``/``read()`` — so
  ``dict.get(k, d)`` and ``sep.join(parts)`` stay clean;
* blocking builtins (``open``).

``Condition.wait`` on the *held* condition is exempt — that is the one
blocking call designed to run under its own lock (it atomically releases
it).  Acquiring a *different* lock inside the region is IDG103's
lock-order-graph territory, not IDG102's.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.concurrency import build_lock_model
from repro.analysis.engine import FileContext, Violation

CODE = "IDG102"
SUMMARY = "blocking call (queue/wait/result/file I/O) made while a lock is held"


def _dotted(expr: ast.AST) -> str | None:
    """``"self._cond"`` for simple name/attribute chains (else None)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return f"{base}.{expr.attr}" if base is not None else None
    return None


def _blocking_reason(
    node: ast.Call, config, held_exprs: set[str]
) -> str | None:
    """Why this call blocks, or None when it does not (or is exempt)."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in config.blocking_functions:
            return f"{func.id}() performs blocking I/O"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = _dotted(func.value)
    if receiver is not None and receiver in held_exprs:
        # condition.wait()/notify on the held lock itself is the intended
        # pattern (wait atomically releases the lock while sleeping)
        return None
    name = func.attr
    if name in config.blocking_any_arg_methods:
        return f".{name}() may block indefinitely"
    if (
        name in config.blocking_zero_arg_methods
        and not node.args
        and not node.keywords  # acquire(blocking=False) etc. are bounded
    ):
        return f".{name}() may block indefinitely"
    return None


def check(ctx: FileContext) -> Iterator[Violation]:
    model = build_lock_model(ctx)
    config = ctx.config

    seen: set[int] = set()

    def scan(body: list[ast.stmt], held_exprs: set[str], lock_desc: str
             ) -> Iterator[Violation]:
        def visit(node: ast.AST) -> Iterator[Violation]:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return  # nested definitions run later, not under the lock
            if isinstance(node, ast.Call) and id(node) not in seen:
                reason = _blocking_reason(node, config, held_exprs)
                if reason is not None:
                    seen.add(id(node))
                    yield ctx.violation(
                        node,
                        CODE,
                        f"blocking call while holding {lock_desc}: "
                        f"{reason}; move it outside the locked region",
                    )
            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        for stmt in body:
            yield from visit(stmt)
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            scope = model.enclosing_scope(node)
            lock_items = [
                item for item in node.items
                if model.looks_like_lock(item.context_expr, scope)
            ]
            if not lock_items:
                continue
            held = {
                d for item in lock_items
                if (d := _dotted(item.context_expr)) is not None
            }
            desc = ", ".join(sorted(held)) or "a lock"
            yield from scan(node.body, held, desc)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope = model.scopes.get(node)
            if scope is None or not scope.requires:
                continue
            names = {key.rsplit(".", 1)[-1].rsplit(":", 1)[-1]
                     for key in scope.requires}
            held = {f"self.{n}" for n in names} | names
            desc = ", ".join(sorted(names))
            yield from scan(node.body, held, f"{desc} (requires-lock)")
