"""IDG006 — docstring shapes must agree with ``@shape_checked`` contracts.

The runtime contract (:mod:`repro.analysis.contracts`) and the numpydoc
``Parameters``/``Returns`` shapes describe the same thing; when they drift
apart one of them is lying.  For every function decorated with
``@shape_checked`` this rule parses the docstring's documented shapes
(:mod:`repro.analysis.docshapes`) and compares them — canonicalised under the
shape grammar — against the decorator's spec strings, per parameter and for
the return value.  Parameters whose docstring entry documents no shape are
skipped (the decorator is then the only source of truth); unparseable spec
strings are flagged outright.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.docshapes import docstring_shapes
from repro.analysis.engine import FileContext, Violation
from repro.analysis.shapes import ShapeSpecError, canonical_alternatives

CODE = "IDG006"
SUMMARY = "numpydoc shape disagrees with the @shape_checked contract"

_DECORATOR_NAME = "shape_checked"


def _decorator_call(node: ast.FunctionDef | ast.AsyncFunctionDef) -> ast.Call | None:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name == _DECORATOR_NAME:
            return decorator
    return None


def _spec_strings(call: ast.Call) -> dict[str, tuple[ast.expr, str]]:
    specs: dict[str, tuple[ast.expr, str]] = {}
    for keyword in call.keywords:
        if keyword.arg is None:
            continue
        if isinstance(keyword.value, ast.Constant) and isinstance(
            keyword.value.value, str
        ):
            specs[keyword.arg] = (keyword.value, keyword.value.value)
    return specs


def check(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        call = _decorator_call(node)
        if call is None:
            continue
        specs = _spec_strings(call)
        doc_params, doc_returns = docstring_shapes(ast.get_docstring(node))
        for name, (value_node, spec) in specs.items():
            try:
                declared = canonical_alternatives(spec)
            except ShapeSpecError as exc:
                yield ctx.violation(
                    value_node,
                    CODE,
                    f"{node.name}(): unparseable shape spec for "
                    f"{'return' if name == 'returns' else name!r}: {exc}",
                )
                continue
            documented = (
                doc_returns if name == "returns" else doc_params.get(name, frozenset())
            )
            if documented and documented != declared:
                subject = "return value" if name == "returns" else f"parameter {name!r}"
                yield ctx.violation(
                    value_node,
                    CODE,
                    f"{node.name}(): docstring documents "
                    f"{' | '.join(sorted(documented))} for {subject} but "
                    f"@shape_checked declares {' | '.join(sorted(declared))}",
                )
