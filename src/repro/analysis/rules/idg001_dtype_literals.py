"""IDG001 — raw complex dtype literals in kernel code.

The paper's single-precision argument (Section VI-A) is encoded once, in
:mod:`repro.constants`: storage is ``COMPLEX_DTYPE`` (complex64) and phasor
accumulation is ``ACCUM_DTYPE`` (complex128).  Kernel code that spells
``np.complex64`` / ``np.complex128`` directly re-decides that policy locally
and silently diverges when the constants change (e.g. a future
mixed-precision backend), so any raw literal in a kernel module is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Violation

CODE = "IDG001"
SUMMARY = (
    "raw np.complex64/np.complex128 literal in kernel code; use "
    "repro.constants.COMPLEX_DTYPE / ACCUM_DTYPE"
)


def check(ctx: FileContext) -> Iterator[Violation]:
    if not ctx.is_kernel_module() or ctx.is_dtype_policy_module():
        return
    for node in ast.walk(ctx.tree):
        name = ctx.numpy_attr(node)
        if name in ctx.config.dtype_literals:
            replacement = (
                "ACCUM_DTYPE" if name == "complex128" else "COMPLEX_DTYPE"
            )
            yield ctx.violation(
                node,
                CODE,
                f"raw dtype literal np.{name} in kernel code; use "
                f"repro.constants.{replacement}",
            )
