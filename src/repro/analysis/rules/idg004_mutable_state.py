"""IDG004 — mutable default arguments and module-level mutable state.

Kernels are meant to be pure functions of their inputs so they can be fanned
out across processes (:mod:`repro.parallel`) without hidden coupling.  Two
classic leaks are flagged:

* mutable default arguments (``def f(x=[])`` — shared across calls);
* module-level ``list``/``dict``/``set`` assignments — importable mutable
  globals.  ``__all__``/dunders are exempt, as is anything annotated
  ``Final`` (treated as a declared constant).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Violation

CODE = "IDG004"
SUMMARY = "mutable default argument or module-level mutable state"

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_BUILTINS = ("list", "dict", "set")


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_BUILTINS
    )


def _is_final(annotation: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == "Final"
        for sub in ast.walk(annotation)
    )


def check(ctx: FileContext) -> Iterator[Violation]:
    # mutable defaults, anywhere
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            defaults = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_value(default):
                    name = getattr(node, "name", "<lambda>")
                    yield ctx.violation(
                        default,
                        CODE,
                        f"mutable default argument in {name}(); default to "
                        "None and allocate inside the function",
                    )
    # module-level mutable assignments
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and _is_mutable_value(node.value):
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            flagged = [n for n in names if not (n.startswith("__") and n.endswith("__"))]
            if flagged:
                yield ctx.violation(
                    node,
                    CODE,
                    f"module-level mutable state {', '.join(flagged)}; use a "
                    "tuple/frozen mapping or annotate it Final",
                )
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and _is_mutable_value(node.value)
            and isinstance(node.target, ast.Name)
            and not (node.target.id.startswith("__") and node.target.id.endswith("__"))
            and not _is_final(node.annotation)
        ):
            yield ctx.violation(
                node,
                CODE,
                f"module-level mutable state {node.target.id}; use a "
                "tuple/frozen mapping or annotate it Final",
            )
