"""IDG101 — guarded shared state written without holding its owning lock.

The streaming runtime's objects (channels, gates, telemetry, the stage
graph) share mutable attributes between worker threads and protect them with
per-object locks.  This rule enforces the attribute-to-lock ownership map:

* an attribute is *guarded* when an explicit
  ``# idglint: guarded-by(<lock>)`` annotation says so, or when any method
  mutates it inside ``with self.<lock>:`` (inference — an attribute that is
  sometimes locked must always be locked);
* every write or in-place mutation of a guarded attribute outside
  ``__init__``/``__post_init__`` must hold the owning lock — either via an
  enclosing ``with``, or because the function is annotated
  ``# idglint: requires-lock(<lock>)`` (its callers hold it);
* every resolvable call to a ``requires-lock`` function must itself hold
  the asserted lock, which is what keeps the annotation honest.

Module-level globals annotated ``guarded-by`` against a module-level lock
are held to the same standard.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.concurrency import (
    GUARDED_BY_RE,
    MUTATOR_METHODS,
    FunctionScope,
    LockModel,
    build_lock_model,
    iter_attr_mutations,
    line_annotation,
)
from repro.analysis.engine import FileContext, Violation

CODE = "IDG101"
SUMMARY = "guarded shared attribute written without holding its owning lock"

_CONSTRUCTORS = ("__init__", "__post_init__", "__new__", "__del__")


def _check_class_guards(ctx: FileContext, model: LockModel) -> Iterator[Violation]:
    for cls in model.classes.values():
        if not cls.guards:
            continue
        for scope in model.scopes.values():
            fn = scope.node
            enclosing = model._enclosing_class(scope)
            in_class = enclosing is not None and enclosing.name == cls.name
            direct_method = fn in cls.methods.values()
            if direct_method and fn.name in _CONSTRUCTORS:
                continue
            owners = ("self", cls.name) if in_class else (cls.name,)
            for attr, node, kind in iter_attr_mutations(fn, owners):
                lock_attr = cls.guards.get(attr)
                if lock_attr is None:
                    continue
                owner_key = f"{cls.name}.{lock_attr}"
                if owner_key in model.held_locks(node, scope):
                    continue
                origin = "annotated" if attr in cls.annotated else "inferred"
                verb = "written" if kind == "write" else "mutated in place"
                yield ctx.violation(
                    node,
                    CODE,
                    f"attribute {cls.name}.{attr} is guarded by "
                    f"self.{lock_attr} ({origin}) but {verb} without "
                    f"holding it; wrap in `with self.{lock_attr}:` or annotate "
                    "the function `# idglint: requires-lock"
                    f"({lock_attr})`",
                )


def _module_guards(ctx: FileContext, model: LockModel) -> dict[str, str]:
    """Module-global name -> module-level lock name (annotation only)."""
    guards: dict[str, str] = {}
    for node in ctx.tree.body:
        lock = line_annotation(ctx, node.lineno, GUARDED_BY_RE)
        if lock is None or lock not in model.module_locks:
            continue
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                guards[target.id] = lock
    return guards


def _check_module_guards(ctx: FileContext, model: LockModel) -> Iterator[Violation]:
    guards = _module_guards(ctx, model)
    if not guards:
        return
    for scope in model.scopes.values():
        declared_global = {
            name
            for node in ast.walk(scope.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }

        def flag(name: str, node: ast.AST, verb: str) -> Violation:
            lock = guards[name]
            return ctx.violation(
                node,
                CODE,
                f"module global {name} is guarded by {lock} (annotated) but "
                f"{verb} without holding it",
            )

        for node in ast.walk(scope.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    base = target
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in guards
                        and (
                            base.id in declared_global
                            or isinstance(target, ast.Subscript)
                        )
                        and base.id not in scope.bindings
                    ):
                        held = model.held_locks(node, scope)
                        if f"{ctx.relpath}:{guards[base.id]}" not in held:
                            yield flag(base.id, node, "written")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in guards
                and node.func.value.id not in scope.bindings
            ):
                if node.func.attr in MUTATOR_METHODS:
                    held = model.held_locks(node, scope)
                    if f"{ctx.relpath}:{guards[node.func.value.id]}" not in held:
                        yield flag(node.func.value.id, node, "mutated in place")


def _check_requires_callsites(
    ctx: FileContext, model: LockModel
) -> Iterator[Violation]:
    """Calls to ``requires-lock`` functions must hold the asserted lock."""
    required = {
        qualname: scope
        for qualname, scope in model.by_qualname.items()
        if scope.requires
    }
    if not required:
        return
    for scope in model.scopes.values():
        for node in ast.walk(scope.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _resolve_callee(model, node, scope)
            if callee is None or not callee.requires:
                continue
            if callee.node is scope.node:
                continue  # recursion: entry already checked at outer call
            held = model.held_locks(node, scope)
            for key in callee.requires:
                if key not in held:
                    lock = key.rsplit(".", 1)[-1].rsplit(":", 1)[-1]
                    yield ctx.violation(
                        node,
                        CODE,
                        f"call to {callee.qualname}() requires lock "
                        f"{lock} (requires-lock annotation) but the call "
                        "site does not hold it",
                    )


def _resolve_callee(
    model: LockModel, call: ast.Call, scope: FunctionScope
) -> FunctionScope | None:
    """Same-file call resolution: ``self.m()``, ``Class.m()``, ``f()``."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner = func.value.id
        if owner == "self":
            cls = model._enclosing_class(scope)
            if cls is not None:
                return model.by_qualname.get(f"{cls.name}.{func.attr}")
            return None
        if owner in model.classes:
            return model.by_qualname.get(f"{owner}.{func.attr}")
        return None
    if isinstance(func, ast.Name):
        # innermost visible definition: walk the lexical chain outward
        current: FunctionScope | None = scope
        while current is not None:
            candidate = model.by_qualname.get(
                f"{current.qualname}.<locals>.{func.id}"
            )
            if candidate is not None:
                return candidate
            current = current.parent
        return model.by_qualname.get(func.id)
    return None


def check(ctx: FileContext) -> Iterator[Violation]:
    model = build_lock_model(ctx)
    yield from _check_class_guards(ctx, model)
    yield from _check_module_guards(ctx, model)
    yield from _check_requires_callsites(ctx, model)
