"""IDG103 — inconsistent lock-acquisition order (deadlock by inversion).

Two threads that take the same pair of locks in opposite orders can deadlock
— each holding the lock the other needs.  This rule builds a *lock-order
graph* over the whole linted file set: an edge ``A -> B`` means some code
path acquires lock ``B`` while already holding ``A``, either directly
(nested ``with`` statements, or a ``with`` inside a
``# idglint: requires-lock(A)`` function) or *interprocedurally* — a call
made under ``A`` to a function that (transitively, through same-file call
resolution) may acquire ``B``.  A cycle in that graph is an ordering
inversion; each one is reported once, anchored at its first acquisition
site, naming the full cycle.

Locks are identified by canonical keys (``Class.attr``, ``file:name``) so
methods in different files contribute to one graph.  Self-cycles are only
reported for locks known to be non-reentrant (``threading.Lock``);
``RLock``/``Condition`` (whose default inner lock is an RLock) re-acquire
legally.

This is a *project* rule: it implements ``check_project`` and sees every
parsed file at once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.concurrency import FunctionScope, LockModel, build_lock_model
from repro.analysis.engine import FileContext, Violation

CODE = "IDG103"
SUMMARY = "inconsistent lock-acquisition order across functions (cycle)"


@dataclass(frozen=True)
class _Edge:
    """One held->acquired observation, with its source anchor."""

    held: str
    acquired: str
    ctx: FileContext
    node: ast.AST
    via: str  # "" for a direct nested acquisition, else the callee qualname


def _callee_qualname(
    model: LockModel, call: ast.Call, scope: FunctionScope | None
) -> str | None:
    """Same-file resolution of a call to a function qualname, or None."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner = func.value.id
        if owner == "self":
            cls = model._enclosing_class(scope)
            if cls is not None and func.attr in cls.methods:
                return f"{cls.name}.{func.attr}"
            return None
        if owner in model.classes and func.attr in model.classes[owner].methods:
            return f"{owner}.{func.attr}"
        return None
    if isinstance(func, ast.Name):
        current = scope
        while current is not None:
            qualname = f"{current.qualname}.<locals>.{func.id}"
            if qualname in model.by_qualname:
                return qualname
            current = current.parent
        if func.id in model.by_qualname:
            return func.id
    return None


def _function_facts(
    model: LockModel, scope: FunctionScope
) -> tuple[set[str], list[tuple[str, ast.Call]], list[_Edge]]:
    """(direct lock keys, calls-under-lock, direct nested edges) of one
    function body (nested defs excluded — they are separate functions)."""
    ctx = model.ctx
    direct: set[str] = set()
    calls_under: list[tuple[str, ast.Call]] = []
    edges: list[_Edge] = []

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = held
            for item in node.items:
                key = model.lock_key(item.context_expr, scope)
                if key is None:
                    continue
                direct.add(key)
                for h in new_held:
                    edges.append(_Edge(h, key, ctx, node, ""))
                new_held = (*new_held, key)
            for child in node.body:
                visit(child, new_held)
            return
        if isinstance(node, ast.Call):
            qualname = _callee_qualname(model, node, scope)
            if qualname is not None:
                for h in held:
                    calls_under.append((h, node))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in scope.node.body:
        visit(stmt, scope.requires)
    return direct, calls_under, edges


def check_project(contexts: list[FileContext]) -> Iterator[Violation]:
    models = [build_lock_model(ctx) for ctx in contexts]

    # ---- per-function summaries --------------------------------------------
    # global function id: (relpath, qualname) — call resolution is same-file
    facts: dict[tuple[str, str], tuple[set[str], list[tuple[str, ast.Call]]]] = {}
    edges: list[_Edge] = []
    scope_index: dict[tuple[str, str], tuple[LockModel, FunctionScope]] = {}
    for model in models:
        for qualname, scope in model.by_qualname.items():
            fid = (model.ctx.relpath, qualname)
            direct, calls_under, direct_edges = _function_facts(model, scope)
            facts[fid] = (direct, calls_under)
            edges.extend(direct_edges)
            scope_index[fid] = (model, scope)

    # ---- transitive may-acquire sets (fixpoint over same-file calls) -------
    may_acquire: dict[tuple[str, str], set[str]] = {
        fid: set(direct) for fid, (direct, _) in facts.items()
    }
    callees: dict[tuple[str, str], set[tuple[str, str]]] = {}
    for fid, (model, scope) in scope_index.items():
        out: set[tuple[str, str]] = set()
        for node in ast.walk(scope.node):
            if isinstance(node, ast.Call):
                qualname = _callee_qualname(model, node, scope)
                if qualname is not None:
                    out.add((model.ctx.relpath, qualname))
        callees[fid] = out
    changed = True
    while changed:
        changed = False
        for fid, callee_set in callees.items():
            acquired = may_acquire[fid]
            before = len(acquired)
            for callee in callee_set:
                acquired |= may_acquire.get(callee, set())
            if len(acquired) != before:
                changed = True

    # ---- interprocedural edges: call under lock -> callee's acquisitions --
    for fid, (model, scope) in scope_index.items():
        _, calls_under = facts[fid]
        for held, call in calls_under:
            qualname = _callee_qualname(model, call, scope)
            if qualname is None:
                continue
            callee_fid = (model.ctx.relpath, qualname)
            for key in may_acquire.get(callee_fid, set()):
                edges.append(_Edge(held, key, model.ctx, call, qualname))

    # ---- reentrancy: drop self-edges unless the lock is a plain Lock ------
    factories: dict[str, str] = {}
    for model in models:
        for edge in edges:
            for key in (edge.held, edge.acquired):
                if key not in factories:
                    factory = model.lock_factory_for_key(key)
                    if factory != "?":
                        factories[key] = factory
    edges = [
        e for e in edges
        if e.held != e.acquired or factories.get(e.held) == "Lock"
    ]
    if not edges:
        return

    # ---- cycle detection (SCCs of the aggregated digraph) ------------------
    graph: dict[str, set[str]] = {}
    for edge in edges:
        graph.setdefault(edge.held, set()).add(edge.acquired)
        graph.setdefault(edge.acquired, set())
    for component in _sccs(graph):
        in_cycle = set(component)
        cyclic_edges = [
            e for e in edges if e.held in in_cycle and e.acquired in in_cycle
        ]
        if len(component) == 1 and not any(
            e.held == e.acquired for e in cyclic_edges
        ):
            continue
        if not cyclic_edges:
            continue
        anchor = min(
            cyclic_edges, key=lambda e: (e.ctx.relpath, e.node.lineno)
        )
        ordering = " -> ".join(sorted(in_cycle))
        sites = sorted(
            {
                f"{e.ctx.relpath}:{e.node.lineno}"
                + (f" (via {e.via}())" if e.via else "")
                for e in cyclic_edges
            }
        )
        yield anchor.ctx.violation(
            anchor.node,
            CODE,
            f"lock-order cycle {ordering} -> {sorted(in_cycle)[0]}: "
            "these locks are acquired in conflicting orders "
            f"(acquisition sites: {', '.join(sites)}); pick one global "
            "order and restructure the nested acquisition",
        )


def _sccs(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's strongly-connected components, iterative (no recursion
    limit), in deterministic node order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[list[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(graph[root])))
        ]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(sorted(component))
    return result
