"""IDG105 — threading primitive constructed in a hot loop or per-work-group
path.

Locks, conditions, events and threads are meant to be created once and
reused: constructing them per iteration churns allocations, defeats lock
identity (two iterations "synchronising" on different locks synchronise on
nothing), and ``threading.Thread`` per item costs ~100µs of spawn latency
each — the per-work-group paths this codebase batches precisely to avoid.
This rule flags construction of a ``threading`` primitive:

* inside a ``for``/``while`` loop (within the same function — a loop in an
  outer function does not make a nested function body hot), or
* anywhere in a function whose name marks it as a per-work-group hot path
  (``hot_path_markers`` in :class:`~repro.analysis.engine.LintConfig`).

Bounded startup loops (spawning one worker thread per stage) are legitimate
— suppress those sites with ``# idglint: disable=IDG105`` and a
justification, as :meth:`StageGraph.run` does.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Violation

CODE = "IDG105"
SUMMARY = "threading primitive constructed in a hot loop / per-work-group path"

#: ``threading.<name>`` constructors that should be hoisted out of hot paths.
_PRIMITIVES = frozenset(
    {
        "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
        "Event", "Barrier", "Thread", "Timer", "local",
    }
)


def _primitive_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "threading" and func.attr in _PRIMITIVES:
            return func.attr
    return None


def _enclosing_function(
    ctx: FileContext, node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def check(ctx: FileContext) -> Iterator[Violation]:
    markers = ctx.config.hot_path_markers
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _primitive_name(node)
        if name is None:
            continue
        fn = _enclosing_function(ctx, node)
        in_loop = ctx.enclosing_loop(node) is not None
        hot_fn = fn is not None and any(m in fn.name for m in markers)
        if in_loop:
            yield ctx.violation(
                node,
                CODE,
                f"threading.{name}() constructed inside a loop; hoist it out "
                "(or suppress with a justification if the loop is bounded "
                "startup code)",
            )
        elif hot_fn:
            yield ctx.violation(
                node,
                CODE,
                f"threading.{name}() constructed in per-work-group hot path "
                f"{fn.name}(); create it once at setup and reuse it",
            )
