"""The idglint rule catalogue.

Each rule is one module exposing ``CODE`` (its error code), ``SUMMARY`` (a
one-line description) and ``check(ctx)`` yielding
:class:`repro.analysis.engine.Violation` objects for one parsed file.
Project-wide rules (the IDG103 lock-order graph) expose
``check_project(contexts)`` instead and see every parsed file at once.

The IDG0xx series covers numeric/dtype/shape invariants; the IDG1xx series
("idgsan") covers concurrency correctness in the streaming runtime.
"""

from __future__ import annotations

from typing import Final

from repro.analysis.rules import (
    idg001_dtype_literals,
    idg002_trig_in_loop,
    idg003_alloc_in_loop,
    idg004_mutable_state,
    idg005_return_annotations,
    idg006_doc_shapes,
    idg101_guarded_attrs,
    idg102_blocking_under_lock,
    idg103_lock_order,
    idg104_arena_escape,
    idg105_primitive_in_hot_path,
)

ALL_RULES = (
    idg001_dtype_literals,
    idg002_trig_in_loop,
    idg003_alloc_in_loop,
    idg004_mutable_state,
    idg005_return_annotations,
    idg006_doc_shapes,
    idg101_guarded_attrs,
    idg102_blocking_under_lock,
    idg103_lock_order,
    idg104_arena_escape,
    idg105_primitive_in_hot_path,
)

RULES_BY_CODE: Final = {rule.CODE: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_CODE"]
