"""The idglint rule catalogue.

Each rule is one module exposing ``CODE`` (its error code), ``SUMMARY`` (a
one-line description) and ``check(ctx)`` yielding
:class:`repro.analysis.engine.Violation` objects for one parsed file.
"""

from __future__ import annotations

from typing import Final

from repro.analysis.rules import (
    idg001_dtype_literals,
    idg002_trig_in_loop,
    idg003_alloc_in_loop,
    idg004_mutable_state,
    idg005_return_annotations,
    idg006_doc_shapes,
)

ALL_RULES = (
    idg001_dtype_literals,
    idg002_trig_in_loop,
    idg003_alloc_in_loop,
    idg004_mutable_state,
    idg005_return_annotations,
    idg006_doc_shapes,
)

RULES_BY_CODE: Final = {rule.CODE: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_CODE"]
