"""IDG104 — thread-arena buffer view escaping its owning scope.

:func:`repro.core.scratch.thread_arena` hands out *views* into a per-thread
bump allocator; ``ScratchArena.take``/``zeros`` likewise.  Those views are
only valid until the arena is released or reused — handing one to another
thread (or keeping it alive past the work item) is a use-after-recycle race
that numpy cannot detect.  This rule flags view expressions that escape:

* ``return`` of an arena view from a function that obtained the arena
  *itself* via ``thread_arena()`` — the caller may run on a different
  thread and has no way to know the buffer is borrowed.  Functions that
  accept an ``arena`` parameter are exempt for plain returns: the caller
  supplied the arena, so the caller owns the view's lifetime (that is the
  documented ``gridder_bucket_fast`` contract).
* ``yield`` of an arena view — generators suspend arbitrarily long, so the
  view outlives any reasonable arena epoch regardless of who owns it.
* storing an arena view on ``self``/a module global — object attributes
  outlive the work item and are exactly the shared state other threads read.

A *view expression* is ``thread_arena().take(...)`` (or ``.zeros``), the
same methods on a name bound from ``thread_arena()`` or on an ``arena``
parameter, or a name bound from any of those.  Copies (``.copy()``,
``np.array(view)``) launder the view and are clean.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Violation

CODE = "IDG104"
SUMMARY = "scratch-arena view escapes its owning thread/scope"

#: Parameter names treated as caller-owned arenas.
_ARENA_PARAMS = ("arena",)


def _arena_call(node: ast.AST, factories: tuple[str, ...]) -> bool:
    """Is this ``thread_arena()`` / ``scratch.thread_arena()``?"""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in factories
    if isinstance(func, ast.Attribute):
        return func.attr in factories
    return False


def check(ctx: FileContext) -> Iterator[Violation]:
    config = ctx.config
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield from _check_function(ctx, fn, config)


def _check_function(
    ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef, config
) -> Iterator[Violation]:
    args = fn.args
    param_names = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    arena_params = {p for p in _ARENA_PARAMS if p in param_names}
    # names bound (in this function, not nested defs) to an arena object
    arena_names: set[str] = set(arena_params)
    # names bound to a view into arena memory
    view_names: set[str] = set()

    def is_arena_expr(expr: ast.AST) -> bool:
        if _arena_call(expr, config.arena_factories):
            return True
        return isinstance(expr, ast.Name) and expr.id in arena_names

    def is_view_expr(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            if expr.func.attr in config.arena_view_methods and is_arena_expr(
                expr.func.value
            ):
                return True
        return isinstance(expr, ast.Name) and expr.id in view_names

    # ---- two passes: first learn the bindings, then judge the escapes ----
    body_nodes: list[ast.AST] = []

    def collect(node: ast.AST) -> None:
        body_nodes.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            collect(child)

    for stmt in fn.body:
        collect(stmt)

    changed = True
    while changed:  # fixpoint: view = thread_arena(); buf = view.take(...)
        changed = False
        for node in body_nodes:
            if not isinstance(node, ast.Assign):
                continue
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if not names:
                continue
            if is_arena_expr(node.value) and not set(names) <= arena_names:
                arena_names.update(names)
                changed = True
            elif is_view_expr(node.value) and not set(names) <= view_names:
                view_names.update(names)
                changed = True

    for node in body_nodes:
        if isinstance(node, ast.Return) and node.value is not None:
            if is_view_expr(node.value) and not arena_params:
                yield ctx.violation(
                    node,
                    CODE,
                    "returning a thread-arena view from a function that "
                    "obtained the arena itself; the caller cannot know the "
                    "buffer is borrowed — accept an `arena` parameter "
                    "(caller owns the lifetime) or return a copy",
                )
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            if value is not None and is_view_expr(value):
                yield ctx.violation(
                    node,
                    CODE,
                    "yielding a thread-arena view; the generator may be "
                    "resumed after the arena is recycled — yield a copy",
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                stores_attr = isinstance(base, ast.Attribute)
                if stores_attr and is_view_expr(node.value):
                    yield ctx.violation(
                        node,
                        CODE,
                        "storing a thread-arena view on an object attribute; "
                        "attributes outlive the work item and may be read "
                        "from other threads — store a copy",
                    )
                    break
