"""Mathematical building blocks shared by IDG and the traditional gridders.

Submodules
----------
``fft``
    Centered 2-D FFT helpers (``fftshift . fft2 . ifftshift``) so image-domain
    and uv-domain arrays are always indexed with the origin in the middle.
``spheroidal``
    Prolate-spheroidal anti-aliasing taper and its grid-correction function.
``wkernel``
    Image-domain w-phase terms and Fourier-domain w-kernels.
``convolution``
    Oversampled convolution-kernel construction used by the W-projection and
    AW-projection baselines.
"""

from repro.kernels.fft import (
    centered_fft2,
    centered_ifft2,
    fft_grid_to_image,
    fft_image_to_grid,
    fourier_coordinates,
    image_coordinates,
)
from repro.kernels.spheroidal import (
    evaluate_prolate_spheroidal,
    grid_correction,
    kaiser_bessel_taper,
    spheroidal_taper,
)
from repro.kernels.wkernel import (
    n_term,
    w_kernel_fourier,
    w_kernel_image,
    w_kernel_support,
)
from repro.kernels.convolution import (
    OversampledKernel,
    build_aw_kernel,
    build_w_projection_kernel,
)

__all__ = [
    "centered_fft2",
    "centered_ifft2",
    "fft_grid_to_image",
    "fft_image_to_grid",
    "fourier_coordinates",
    "image_coordinates",
    "evaluate_prolate_spheroidal",
    "grid_correction",
    "kaiser_bessel_taper",
    "spheroidal_taper",
    "n_term",
    "w_kernel_fourier",
    "w_kernel_image",
    "w_kernel_support",
    "OversampledKernel",
    "build_aw_kernel",
    "build_w_projection_kernel",
]
