"""Centered 2-D FFT helpers.

Throughout the package both image-domain arrays (sky patches, subgrids after
the inverse transform) and Fourier-domain arrays (the master grid, subgrids
before the adder) are stored *centered*: index ``n // 2`` along each axis is
the origin.  The helpers here hide the ``fftshift``/``ifftshift`` dance and fix
the sign convention once:

* ``fft_image_to_grid``  — image ``(l, m)`` → uv grid, kernel
  ``exp(-2*pi*i*(u*l + v*m))`` (matches the measurement equation, paper Eq. 1).
* ``fft_grid_to_image``  — uv grid → image, kernel ``exp(+2*pi*i*(u*l + v*m))``
  with the customary ``1/N**2`` normalisation folded in by ``ifft2``.

With centered coordinates ``x - N//2`` and ``p - N//2`` these transforms are
exactly discrete sums over the *centered* phase
``exp(∓2*pi*i*(p - N//2)*(x - N//2)/N)`` — no residual checkerboard phase —
which is what lets a subgrid FFT drop straight into the master grid at an
integer pixel offset (Section IV of the paper, "the subgrid has to be
Fourier-transformed before the result is added to the grid").
"""

from __future__ import annotations

import numpy as np


def centered_fft2(a: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """Forward FFT that maps a centered array to a centered spectrum.

    Equivalent to ``fftshift(fft2(ifftshift(a)))`` over ``axes``.  For an
    input sampled at centered coordinates this computes

    ``A[q, p] = sum_{y,x} a[y, x] * exp(-2*pi*i*((p-N//2)*(x-N//2)
    + (q-M//2)*(y-M//2))/N)``.
    """
    return np.fft.fftshift(np.fft.fft2(np.fft.ifftshift(a, axes=axes), axes=axes), axes=axes)


def centered_ifft2(a: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """Inverse of :func:`centered_fft2` (includes the ``1/(M*N)`` factor)."""
    return np.fft.fftshift(np.fft.ifft2(np.fft.ifftshift(a, axes=axes), axes=axes), axes=axes)


def fft_image_to_grid(image: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """Transform a centered image to the centered uv grid.

    Uses the measurement-equation sign (``exp(-2*pi*i*(u*l + v*m))``): a point
    source of unit flux at the image centre produces a constant, real,
    positive grid.
    """
    return centered_fft2(image, axes=axes)


def fft_grid_to_image(grid: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """Transform a centered uv grid to the centered image plane.

    This is the imaging direction (``exp(+2*pi*i*(u*l + v*m))`` with ``1/N**2``
    normalisation), the inverse of :func:`fft_image_to_grid`.
    """
    return centered_ifft2(grid, axes=axes)


def image_coordinates(n_pixels: int, image_size: float, dtype=np.float64) -> np.ndarray:
    """Direction-cosine coordinates of the pixel centres of a centered image.

    Parameters
    ----------
    n_pixels:
        Number of pixels along the axis.
    image_size:
        Full extent of the image in direction cosines (~ radians for small
        fields).  The pixel at index ``n_pixels // 2`` sits exactly at 0.

    Returns
    -------
    Array of shape ``(n_pixels,)`` with values
    ``(arange(n) - n//2) * image_size / n``.
    """
    idx = np.arange(n_pixels, dtype=dtype)
    return (idx - n_pixels // 2) * (image_size / n_pixels)


def fourier_coordinates(n_pixels: int, image_size: float, dtype=np.float64) -> np.ndarray:
    """uv coordinates (in wavelengths) of a centered grid's cell centres.

    The uv cell size is ``1 / image_size``; index ``n_pixels // 2`` is the
    origin.  ``image_coordinates`` and ``fourier_coordinates`` of matching
    sizes satisfy ``du * dl == 1 / n_pixels``, the resolution relation the
    centered FFT assumes.
    """
    idx = np.arange(n_pixels, dtype=dtype)
    return (idx - n_pixels // 2) / image_size


def subgrid_to_grid_offset(
    corner: tuple[int, int], subgrid_size: int, grid_size: int, image_size: float
) -> tuple[float, float]:
    """uv coordinates (wavelengths) of a subgrid's centre pixel.

    A subgrid occupies master-grid cells ``corner[0] .. corner[0]+N-1`` along u
    (and similarly along v); its centre pixel is the cell at
    ``corner + N//2``, which lies at
    ``(corner + N//2 - grid_size//2) / image_size`` wavelengths.

    Returns ``(u_mid, v_mid)`` for ``corner = (cu, cv)``.
    """
    cu, cv = corner
    du = 1.0 / image_size
    u_mid = (cu + subgrid_size // 2 - grid_size // 2) * du
    v_mid = (cv + subgrid_size // 2 - grid_size // 2) * du
    return (u_mid, v_mid)
