"""W-term handling.

The third baseline coordinate ``w`` adds the phase ``exp(-2*pi*i*w*n(l, m))``
with ``n = 1 - sqrt(1 - l**2 - m**2)`` to the measurement equation (paper
Eq. 1).  Two families of correction exist:

* **image domain** (what IDG does): evaluate the phase screen on the (coarse)
  image raster and multiply it in — exact per visibility, no storage;
* **Fourier domain** (what W-projection does): convolve every visibility with
  the Fourier transform of that screen, a ``N_W x N_W`` kernel whose support
  grows with ``|w|`` and with the field of view.

This module provides both forms plus the standard support-size estimate that
drives the Fig 16 comparison (IDG vs WPG as a function of ``N_W``).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.fft import centered_fft2, image_coordinates


def n_term(l: np.ndarray, m: np.ndarray) -> np.ndarray:
    """``n(l, m) = 1 - sqrt(1 - l**2 - m**2)`` (paper Eq. 1 convention).

    Accepts broadcastable ``l`` and ``m`` direction-cosine arrays.  Directions
    outside the unit sphere (``l**2 + m**2 > 1``, possible only for extreme
    fields) are clamped to the horizon value ``n = 1``.
    """
    l = np.asarray(l, dtype=np.float64)
    m = np.asarray(m, dtype=np.float64)
    r2 = l * l + m * m
    return 1.0 - np.sqrt(np.clip(1.0 - r2, 0.0, None))


def w_kernel_image(
    w: float, n_pixels: int, image_size: float, sign: float = -1.0
) -> np.ndarray:
    """Image-domain w phase screen ``exp(sign * 2*pi*i * w * n(l, m))``.

    Parameters
    ----------
    w:
        Baseline w coordinate in wavelengths.
    n_pixels, image_size:
        Raster definition; ``image_size`` is the full field of view in
        direction cosines.
    sign:
        ``-1`` matches the measurement equation (predict direction);
        ``+1`` is the imaging/correction direction.
    """
    l = image_coordinates(n_pixels, image_size)
    n = n_term(l[np.newaxis, :], l[:, np.newaxis])
    return np.exp(sign * 2.0j * np.pi * w * n)


def w_kernel_fourier(
    w: float,
    n_pixels: int,
    image_size: float,
    taper: np.ndarray | None = None,
    sign: float = -1.0,
) -> np.ndarray:
    """Fourier-domain w (or w+taper) convolution kernel.

    Computes ``FFT(taper(l, m) * exp(sign*2*pi*i*w*n))`` on an ``n_pixels``
    raster spanning the full field of view, normalised so the kernel sums
    to 1 — the classic W-projection kernel.  Pass ``taper=None`` for a pure
    w kernel.
    """
    screen = w_kernel_image(w, n_pixels, image_size, sign=sign)
    if taper is not None:
        if taper.shape != screen.shape:
            raise ValueError(
                f"taper shape {taper.shape} does not match raster ({n_pixels}, {n_pixels})"
            )
        screen = screen * taper
    kernel = centered_fft2(screen)
    total = kernel.sum()
    if total != 0:
        kernel = kernel / total
    return kernel


def w_kernel_support(w: float, image_size: float, padding: float = 1.1) -> int:
    """Estimated one-sided support (in uv cells) of the w kernel.

    The instantaneous spatial frequency of the screen at the image edge is
    ``w * d n/d l ~= w * l_max / sqrt(1 - l_max**2)``; multiplying by the uv
    cell size ``1/image_size``... i.e. in *cells* the half-support is
    ``w * l_max**2 / sqrt(1 - l_max**2) * padding`` with
    ``l_max = image_size / 2`` (see Cornwell et al. 2008).  Always returns at
    least 1 so that even ``w = 0`` kernels carry the taper support.
    """
    l_max = 0.5 * image_size
    half = abs(w) * l_max * l_max / np.sqrt(max(1.0 - l_max * l_max, 1e-12))
    return max(1, int(np.ceil(half * padding)))


def required_w_planes(
    w_max: float, image_size: float, max_support: int, padding: float = 1.1
) -> int:
    """Number of W-stacking planes needed to cap kernel support at ``max_support``.

    Inverse of :func:`w_kernel_support`: after splitting ``[-w_max, w_max]``
    into ``P`` planes, each visibility's residual ``|w - w_plane|`` is at most
    ``w_max / P``, so ``P = ceil(w_max / w_at(max_support))``.  Used by the
    W-stacking baseline and the subgrid-size ablation (paper Section IV:
    larger subgrids "dramatically limit the number of required W-planes").
    """
    if w_max <= 0:
        return 1
    l_max = 0.5 * image_size
    slope = l_max * l_max / np.sqrt(max(1.0 - l_max * l_max, 1e-12)) * padding
    if slope <= 0:
        return 1
    w_cap = max_support / slope
    return max(1, int(np.ceil(w_max / w_cap)))
