"""Oversampled convolution kernels for the traditional gridding baselines.

W-projection (and AW-projection) gridding convolves each visibility with the
Fourier transform of ``taper(l, m) * w_screen(l, m) [* A-terms]``.  Because
visibilities fall *between* uv cells, the kernel is tabulated at
``oversample``-times finer uv spacing and the sub-kernel nearest to the
fractional cell offset is selected per visibility — this is the potentially
huge data structure the paper's Section III calls out ("scales quadratically
in size with both the number of pixels ... and an oversampling factor"), and
exactly the storage cost IDG eliminates.

Construction follows the standard zero-padding recipe: an image-domain
function sampled on ``n`` pixels over the full field of view is embedded in an
``n * oversample`` raster (zero outside the field of view), FFT'd — giving uv
samples at ``du / oversample`` spacing — and the central ``support *
oversample`` square is reshuffled into ``oversample**2`` sub-kernels of
``support x support`` cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import ACCUM_DTYPE
from repro.kernels.fft import centered_fft2
from repro.kernels.spheroidal import spheroidal_taper
from repro.kernels.wkernel import w_kernel_image


@dataclass(frozen=True)
class OversampledKernel:
    """A convolution kernel tabulated on an oversampled uv raster.

    Attributes
    ----------
    data:
        Complex array of shape ``(oversample, oversample, support, support)``;
        ``data[rv, ru]`` is the sub-kernel for fractional cell offsets
        ``(fu, fv)`` with ``round(f * oversample) == r`` (negative fractions
        wrap modulo ``oversample``).
    support:
        Kernel width in uv cells (``N_W`` in the paper's Fig 16).
    oversample:
        Number of tabulated fractional positions per cell and axis.
    w:
        The w value (wavelengths) this kernel corrects, 0 for a pure
        anti-aliasing kernel.
    """

    data: np.ndarray
    support: int
    oversample: int
    w: float = 0.0

    def __post_init__(self) -> None:
        expected = (self.oversample, self.oversample, self.support, self.support)
        if self.data.shape != expected:
            raise ValueError(f"kernel data shape {self.data.shape} != {expected}")

    @property
    def nbytes(self) -> int:
        """Storage footprint — the quantity Fig 16's discussion is about."""
        return self.data.nbytes

    def lookup(self, frac_u: float, frac_v: float) -> np.ndarray:
        """Sub-kernel for a visibility at fractional cell offset (frac_u, frac_v).

        ``frac`` must lie in ``[-0.5, 0.5]``; the nearest tabulated offset is
        returned (nearest-neighbour interpolation in the oversampled table,
        as in production gridders).
        """
        ru = int(np.rint(frac_u * self.oversample)) % self.oversample
        rv = int(np.rint(frac_v * self.oversample)) % self.oversample
        return self.data[rv, ru]


def _oversample_image_function(
    image_func: np.ndarray, support: int, oversample: int
) -> np.ndarray:
    """Tabulate the uv transform of ``image_func`` on an oversampled raster.

    ``image_func`` is an ``(n, n)`` complex image spanning the full field of
    view.  Returns the ``(oversample, oversample, support, support)`` table
    described in :class:`OversampledKernel`, normalised so that the
    zero-offset sub-kernel sums to 1 (flux preservation at cell centres).
    """
    n = image_func.shape[0]
    if image_func.shape != (n, n):
        raise ValueError("image_func must be square")
    if support > n:
        raise ValueError(f"support {support} exceeds image raster {n}")
    big = n * oversample
    padded = np.zeros((big, big), dtype=ACCUM_DTYPE)
    lo = big // 2 - n // 2
    padded[lo : lo + n, lo : lo + n] = image_func
    uv_fine = centered_fft2(padded)

    centre = big // 2
    table = np.empty((oversample, oversample, support, support), dtype=ACCUM_DTYPE)
    cells = np.arange(support) - support // 2
    for rv in range(oversample):
        # map table index back to signed sub-cell shift in [-O/2, O/2)
        sv = rv if rv < oversample // 2 + 1 else rv - oversample
        rows = (cells * oversample - sv + centre)[:, np.newaxis]
        for ru in range(oversample):
            su = ru if ru < oversample // 2 + 1 else ru - oversample
            cols = (cells * oversample - su + centre)[np.newaxis, :]
            table[rv, ru] = uv_fine[rows, cols]

    norm = table[0, 0].sum()
    if norm != 0:
        table /= norm
    return table


def build_w_projection_kernel(
    w: float,
    support: int,
    image_size: float,
    oversample: int = 8,
    taper: np.ndarray | None = None,
    raster: int | None = None,
) -> OversampledKernel:
    """Build the W-projection kernel ``FFT(taper * exp(-2*pi*i*w*n))``.

    Parameters
    ----------
    w:
        Baseline w coordinate in wavelengths (the kernel corrects ``+w`` when
        used in gridding with the package's sign conventions).
    support:
        Kernel width ``N_W`` in uv cells.
    image_size:
        Full field of view in direction cosines.
    oversample:
        Fractional-offset resolution (the paper's WPG comparison uses 8).
    taper:
        Optional ``(raster, raster)`` anti-aliasing taper; defaults to the
        prolate spheroidal on the raster.
    raster:
        Image raster used for tabulation; defaults to
        ``max(support, 32)`` rounded up to even.
    """
    if raster is None:
        raster = max(support, 32)
        raster += raster % 2
    if taper is None:
        taper = spheroidal_taper(raster)
    screen = w_kernel_image(w, raster, image_size, sign=-1.0) * taper
    table = _oversample_image_function(screen, support, oversample)
    return OversampledKernel(data=table, support=support, oversample=oversample, w=w)


def build_aw_kernel(
    w: float,
    aterm_product: np.ndarray,
    support: int,
    image_size: float,
    oversample: int = 8,
    taper: np.ndarray | None = None,
) -> OversampledKernel:
    """Build an AW-projection kernel for one scalar A-term product.

    ``aterm_product`` is the image-domain product of the two stations'
    direction-dependent gains for one polarisation pair (shape
    ``(raster, raster)``, complex).  AW-projection needs one such kernel per
    (w plane, A-term interval, station pair, polarisation product) — the
    combinatorial storage explosion quoted in Section VI-E; IDG's image-domain
    application avoids tabulating any of them.
    """
    raster = aterm_product.shape[0]
    if aterm_product.shape != (raster, raster):
        raise ValueError("aterm_product must be square")
    if taper is None:
        taper = spheroidal_taper(raster)
    screen = w_kernel_image(w, raster, image_size, sign=-1.0) * taper * aterm_product
    table = _oversample_image_function(screen, support, oversample)
    return OversampledKernel(data=table, support=support, oversample=oversample, w=w)
