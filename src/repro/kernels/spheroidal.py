"""Anti-aliasing tapers.

IDG multiplies every subgrid by a *taper* in the image domain (Algorithm 1,
``apply_spheroidal``).  In Fourier space that multiplication is a convolution
with the taper's transform — i.e. the taper plays exactly the role the
oversampled convolution kernel plays in traditional gridding, and its Fourier
decay controls how much energy aliases when the coarsely-sampled subgrid image
is replicated across the uv plane.  The paper (and ASTRON's production IDG)
use a prolate-spheroidal wave function, which is the optimal
concentration-of-energy window for this purpose; a Kaiser-Bessel window is
provided as a cheap, tunable alternative.

The *same* function, evaluated on the fine master-image pixel raster, is the
grid correction that must divide the dirty image after the final inverse FFT
(and divide the model image before degridding).
"""

from __future__ import annotations

import numpy as np

from repro.cache import ArtifactCache
from repro.hashing import content_hash

# Rational-polynomial fit of the zeroth-order prolate spheroidal wave function
# psi(alpha=1, c=pi*m/2) with support m=6, from F. Schwab, "Optimal gridding of
# visibility data in radio interferometry", Indirect Imaging (1984).  The same
# coefficients are used by AIPS, CASA and ASTRON's IDG.
_P = np.array(
    [
        [8.203343e-2, -3.644705e-1, 6.278660e-1, -5.335581e-1, 2.312756e-1],
        [4.028559e-3, -3.697768e-2, 1.021332e-1, -1.201436e-1, 6.412774e-2],
    ]
)
_Q = np.array(
    [
        [1.0000000, 8.212018e-1, 2.078043e-1],
        [1.0000000, 9.599102e-1, 2.918724e-1],
    ]
)


def evaluate_prolate_spheroidal(nu: np.ndarray) -> np.ndarray:
    """Evaluate Schwab's prolate-spheroidal function on ``|nu| <= 1``.

    Parameters
    ----------
    nu:
        Normalised coordinate(s); the function is even, equals 1 at ``nu = 0``
        and falls to 0 at ``|nu| = 1``.  Values with ``|nu| > 1`` return 0.

    Returns
    -------
    Array of the same shape as ``nu``.
    """
    nu = np.abs(np.asarray(nu, dtype=np.float64))
    out = np.zeros_like(nu)

    # Piecewise rational approximation on [0, 0.75] and [0.75, 1.0].
    edges_lo = np.array([0.0, 0.75])
    edges_hi = np.array([0.75, 1.0])
    for part in range(2):
        mask = (nu >= edges_lo[part]) & (nu <= edges_hi[part])
        if not np.any(mask):
            continue
        nu_part = nu[mask]
        delta = nu_part * nu_part - edges_hi[part] * edges_hi[part]
        top = np.zeros_like(nu_part)  # idglint: disable=IDG003  (bounded: 2 parts)
        for k in range(_P.shape[1] - 1, -1, -1):
            top = top * delta + _P[part, k]
        bot = np.zeros_like(nu_part)  # idglint: disable=IDG003  (bounded: 2 parts)
        for k in range(_Q.shape[1] - 1, -1, -1):
            bot = bot * delta + _Q[part, k]
        out[mask] = top / bot

    # Normalise so the peak is exactly 1 (evaluate the part-0 rational fit at
    # nu = 0, where delta = -0.75**2).
    d0 = -0.75 * 0.75
    top0 = 0.0
    for k in range(_P.shape[1] - 1, -1, -1):
        top0 = top0 * d0 + _P[0, k]
    bot0 = 0.0
    for k in range(_Q.shape[1] - 1, -1, -1):
        bot0 = bot0 * d0 + _Q[0, k]
    return out / (top0 / bot0)


def kaiser_bessel_taper(n_pixels: int, beta: float = 9.0) -> np.ndarray:
    """Separable 2-D Kaiser-Bessel window of shape ``(n, n)``.

    ``beta`` trades main-lobe width against sidelobe (aliasing) suppression;
    the default suits 24-pixel subgrids.  Unlike the spheroidal, the window is
    strictly positive on the open interval, which avoids divide-by-zero in the
    grid correction everywhere except the exact image edge.
    """
    from numpy import i0

    xi = _normalised_coordinates(n_pixels)
    arg = np.clip(1.0 - xi * xi, 0.0, None)
    window = i0(beta * np.sqrt(arg)) / i0(beta)
    return np.outer(window, window)


def _normalised_coordinates(n_pixels: int) -> np.ndarray:
    """Centered pixel coordinates scaled to [-1, 1): ``(x - n//2) / (n/2)``."""
    idx = np.arange(n_pixels, dtype=np.float64)
    return (idx - n_pixels // 2) / (n_pixels / 2.0)


def spheroidal_taper(n_pixels: int) -> np.ndarray:
    """Separable 2-D prolate-spheroidal taper of shape ``(n, n)``.

    Evaluated at the centered pixel raster of an ``n``-pixel image spanning the
    full field of view; this is the array Algorithm 1 multiplies into every
    subgrid.  The same function on the master raster is the grid correction
    (:func:`grid_correction`).
    """
    window = evaluate_prolate_spheroidal(_normalised_coordinates(n_pixels))
    return np.outer(window, window)


def grid_correction(n_pixels: int, taper: str = "spheroidal", beta: float = 9.0) -> np.ndarray:
    """Image-domain correction: the taper evaluated on the *fine* image raster.

    The dirty image must be divided by this array after the final inverse FFT;
    a model image must be divided by it before the forward FFT used in
    degridding.  Pixels where the taper is exactly zero (the extreme edge row
    and column of the spheroidal) are returned as ``inf`` so that dividing by
    the correction cleanly zeroes them instead of emitting NaNs.
    """
    if taper == "spheroidal":
        arr = spheroidal_taper(n_pixels)
    elif taper == "kaiser-bessel":
        arr = kaiser_bessel_taper(n_pixels, beta=beta)
    else:
        raise ValueError(f"unknown taper {taper!r}; expected 'spheroidal' or 'kaiser-bessel'")
    out = arr.copy()
    out[out == 0.0] = np.inf
    return out


#: Content-hash keyed cache behind :func:`taper_for` (the PR 4 ``lru_cache``
#: migrated onto the shared artifact-cache layer): every ``IDG`` facade,
#: executor worker, service job and test with the same (size, family, beta)
#: shares one immutable array instead of re-evaluating the spheroidal
#: rational fit.  64 MiB bounds even grid-correction-sized tables.
_TAPER_CACHE = ArtifactCache(max_bytes=64 * 1024 * 1024, name="kernels.taper")


def _compute_taper(n_pixels: int, taper: str, beta: float) -> np.ndarray:
    if taper == "spheroidal":
        arr = spheroidal_taper(n_pixels)
    elif taper == "kaiser-bessel":
        arr = kaiser_bessel_taper(n_pixels, beta=beta)
    else:
        raise ValueError(
            f"unknown taper {taper!r}; expected 'spheroidal' or 'kaiser-bessel'"
        )
    arr.setflags(write=False)
    return arr


def taper_for(n_pixels: int, taper: str = "spheroidal", beta: float = 9.0) -> np.ndarray:
    """Return the 2-D taper array by name (dispatch helper used by the core).

    Cached per ``(n_pixels, taper, beta)`` in the shared
    :class:`~repro.cache.ArtifactCache`; the returned array is shared and
    read-only — copy before mutating.
    """
    n_pixels, beta = int(n_pixels), float(beta)
    key = content_hash("taper", n_pixels, str(taper), beta)
    return _TAPER_CACHE.get_or_create(
        key, lambda: _compute_taper(n_pixels, taper, beta)
    )
