"""AW-projection gridding (Bhatnagar et al. 2008; LOFAR's AWImager).

Extends W-projection by baking the direction-dependent A-terms into the
convolution kernels.  Because A-terms are per *station* and per *update
interval*, the kernel for a visibility depends on (station p, station q,
interval, w plane, fractional offset) — the combinatorial kernel-count
explosion quoted in the paper's Section VI-E ("requires significantly more
instructions and bandwidth for loading the [convolution kernels], because
they are dependent on time, frequency, polarization and possibly baseline").
IDG sidesteps all of it by applying the same A-terms as cheap image-domain
multiplications.

Scope: this implementation supports *scalar* A-terms (``A = a(l, m) * eye``,
which covers the beam/pointing/ionosphere generators in
:mod:`repro.aterms.generators`); full 2x2 Mueller kernels would multiply the
kernel count by another factor of 16 without changing the scaling story.
"""

from __future__ import annotations

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.aterms.schedule import ATermSchedule
from repro.baselines.wprojection import WProjectionGridder, _FlatVisibilities
from repro.constants import COMPLEX_DTYPE
from repro.gridspec import GridSpec
from repro.kernels.convolution import _oversample_image_function
from repro.kernels.fft import image_coordinates
from repro.kernels.wkernel import w_kernel_image


class AWProjectionGridder(WProjectionGridder):
    """W-projection with per-(baseline, interval) A-term kernels.

    Parameters as :class:`WProjectionGridder`, plus the A-term generator and
    its update schedule.  Kernels are cached per
    ``(w plane, interval, station_p, station_q, sign)`` — inspect
    :meth:`kernel_count` / :meth:`kernel_storage_bytes` to see the blow-up.
    """

    def __init__(
        self,
        gridspec: GridSpec,
        aterms: ATermGenerator,
        schedule: ATermSchedule | None = None,
        **kwargs,
    ):
        super().__init__(gridspec, **kwargs)
        self.aterms = aterms
        self.schedule = schedule or ATermSchedule(0)
        self._aw_tables: dict[tuple[int, int, int, int, int], np.ndarray] = {}
        self._scalar_cache: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------- kernels

    def _scalar_aterm(self, station: int, interval: int) -> np.ndarray:
        """Scalar A-term field a(l, m) on the kernel raster.

        Raises if the generator is not scalar (off-diagonal Jones terms).
        """
        key = (station, interval)
        if key not in self._scalar_cache:
            field = self.aterms.evaluate_raster(
                station, interval, self.kernel_raster, self.gridspec.image_size
            )
            off_diag = max(
                float(np.abs(field[..., 0, 1]).max()), float(np.abs(field[..., 1, 0]).max())
            )
            diag_diff = float(np.abs(field[..., 0, 0] - field[..., 1, 1]).max())
            if off_diag > 1e-9 or diag_diff > 1e-9:
                raise NotImplementedError(
                    "AW-projection here supports scalar A-terms only "
                    "(A = a(l, m) * eye); use IDG for full 2x2 Jones fields"
                )
            self._scalar_cache[key] = field[..., 0, 0]
        return self._scalar_cache[key]

    def _aw_kernel_table(
        self, plane: int, interval: int, station_p: int, station_q: int, sign: int
    ) -> np.ndarray:
        key = (plane, interval, station_p, station_q, sign)
        if key not in self._aw_tables:
            if sign < 0:
                # Degridding evaluates the prediction kernel at the mirrored
                # argument; by the reflection identity this is the conjugate
                # of the gridding table (see WProjectionGridder._kernel_table).
                self._aw_tables[key] = np.conj(
                    self._aw_kernel_table(plane, interval, station_p, station_q, +1)
                )
            else:
                w = float(self._plane_centres[plane])
                screen = w_kernel_image(
                    w, self.kernel_raster, self.gridspec.image_size, sign=+1.0
                )
                a_p = self._scalar_aterm(station_p, interval)
                a_q = self._scalar_aterm(station_q, interval)
                # gridding (adjoint) direction uses conj(a_p) * a_q, the
                # scalar counterpart of IDG's A_p^H S A_q sandwich
                aw = np.conj(a_p) * a_q
                table = _oversample_image_function(
                    screen * self._taper * aw, self.support, self.oversample
                )
                self._aw_tables[key] = table.astype(np.complex64)
        return self._aw_tables[key]

    def kernel_count(self) -> int:
        """Number of distinct AW kernel tables built so far."""
        return len(self._aw_tables)

    def kernel_storage_bytes(self) -> int:
        return sum(t.nbytes for t in self._aw_tables.values())

    # ------------------------------------------------------------- gridding

    def grid_aw(
        self,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
        visibilities: np.ndarray,
        baselines: np.ndarray,
        grid: np.ndarray | None = None,
    ) -> np.ndarray:
        """Grid with A-term corrected kernels (adjoint direction)."""
        return self._run_aw(
            uvw_m, frequencies_hz, visibilities, baselines, sign=+1, grid=grid
        )

    def degrid_aw(
        self,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
        grid: np.ndarray,
        baselines: np.ndarray,
    ) -> np.ndarray:
        """Predict visibilities with A-term corrupted kernels."""
        return self._run_aw(uvw_m, frequencies_hz, None, baselines, sign=-1, grid=grid)

    # -------------------------------------------------------------- driver

    def _run_aw(self, uvw_m, frequencies_hz, visibilities, baselines, sign, grid):
        gs = self.gridspec
        g = gs.grid_size
        n_bl, n_times, _ = uvw_m.shape
        n_chan = np.atleast_1d(np.asarray(frequencies_hz)).size
        flat, _ = self._flatten(uvw_m, frequencies_hz)
        s = self.support
        half = s // 2
        offsets = np.arange(s) - half

        gridding = sign > 0
        if gridding:
            if grid is None:
                grid = gs.allocate_grid(dtype=COMPLEX_DTYPE)
            vis_flat = np.asarray(visibilities).reshape(-1, 4)
            out = None
        else:
            out = np.zeros((n_bl * n_times * n_chan, 4), dtype=np.complex64)
        grid_flat = grid.reshape(4, g * g)

        # per-visibility interval and baseline indices (flattened order)
        t_index = np.broadcast_to(
            np.arange(n_times)[np.newaxis, :, np.newaxis], (n_bl, n_times, n_chan)
        ).ravel()
        bl_index = np.broadcast_to(
            np.arange(n_bl)[:, np.newaxis, np.newaxis], (n_bl, n_times, n_chan)
        ).ravel()
        interval = np.asarray(self.schedule.interval_of(t_index))

        idx_all = np.flatnonzero(flat.inside)
        # group by (baseline, interval, plane): each group shares one kernel
        group_key = (
            bl_index[idx_all] * 10_000_000
            + interval[idx_all] * 1_000
            + flat.plane[idx_all]
        )
        order = np.argsort(group_key, kind="stable")
        idx_sorted = idx_all[order]
        key_sorted = group_key[order]
        boundaries = np.flatnonzero(np.diff(key_sorted)) + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [idx_sorted.size]])

        for a, b in zip(starts, stops):
            sel = idx_sorted[a:b]
            bl = int(bl_index[sel[0]])
            itv = int(interval[sel[0]])
            plane = int(flat.plane[sel[0]])
            p_st, q_st = int(baselines[bl, 0]), int(baselines[bl, 1])
            table = self._aw_kernel_table(plane, itv, p_st, q_st, sign)
            kernels = table[flat.sub_v[sel], flat.sub_u[sel]].reshape(sel.size, -1)
            rows = flat.cell_v[sel, np.newaxis] + offsets[np.newaxis, :]
            cols = flat.cell_u[sel, np.newaxis] + offsets[np.newaxis, :]
            cell_idx = (rows[:, :, np.newaxis] * g + cols[:, np.newaxis, :]).reshape(
                sel.size, -1
            )
            if gridding:
                for pol in range(4):
                    np.add.at(
                        grid_flat[pol],
                        cell_idx.ravel(),
                        (kernels * vis_flat[sel, pol, np.newaxis]).ravel(),
                    )
            else:
                for pol in range(4):
                    patches = grid_flat[pol][cell_idx]
                    out[sel, pol] = (patches * kernels).sum(axis=1)
        if gridding:
            return grid
        return out.reshape(n_bl, n_times, n_chan, 2, 2)
