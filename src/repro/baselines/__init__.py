"""Traditional gridding baselines: W-projection, W-stacking, AW-projection.

These are the algorithms IDG is evaluated against (paper Sections III and
VI-E).  ``wprojection`` implements the classic per-visibility convolutional
gridder with oversampled w kernels (the algorithm behind WPG [19]);
``wstacking`` caps the kernel support by splitting the w range into planes
(grid copies); ``awprojection`` bakes A-terms into per-(station-pair,
interval) kernels — demonstrating the storage/compute blow-up IDG avoids.
"""

from repro.baselines.wprojection import WProjectionGridder
from repro.baselines.wstacking import WStackingGridder
from repro.baselines.awprojection import AWProjectionGridder
from repro.baselines.adapter import WProjectionImager

__all__ = [
    "WProjectionGridder",
    "WStackingGridder",
    "AWProjectionGridder",
    "WProjectionImager",
]
