"""IDG-interface adapter for the traditional gridders.

The paper's Fig 4 argues IDG is a *drop-in replacement* for the gridding and
degridding steps of the imaging pipeline.  The converse also holds: this
adapter wraps :class:`~repro.baselines.wprojection.WProjectionGridder` in
the :class:`~repro.core.IDG` interface (``make_plan`` / ``grid`` /
``degrid`` plus the attributes the imaging layer reads), so the *same*
:class:`~repro.imaging.cycle.ImagingCycle` can run with either gridder —
enabling end-to-end image-quality comparisons on identical code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.wprojection import WProjectionGridder
from repro.core.pipeline import IDGConfig
from repro.gridspec import GridSpec


@dataclass(frozen=True)
class _AdapterStatistics:
    """The subset of :class:`~repro.core.plan.PlanStatistics` the imaging
    layer consumes."""

    n_visibilities_gridded: int
    n_visibilities_flagged: int
    n_subgrids: int = 0


class _AdapterPlan:
    """Plan stand-in: W-projection needs no execution plan, only the flags
    (kernel footprints that fall off the grid)."""

    def __init__(self, flagged: np.ndarray, n_channels: int):
        self.flagged = flagged
        self.n_channels = n_channels
        total = int(flagged.size)
        n_flagged = int(flagged.sum())
        self.statistics = _AdapterStatistics(
            n_visibilities_gridded=total - n_flagged,
            n_visibilities_flagged=n_flagged,
        )


class WProjectionImager:
    """W-projection behind the IDG pipeline interface.

    Parameters mirror :class:`WProjectionGridder`; ``config`` carries the
    taper fields the imaging layer reads (the gridder's own kernels always
    use the spheroidal, matching the paper's WPG).
    """

    def __init__(
        self,
        gridspec: GridSpec,
        support: int = 16,
        oversample: int = 8,
        n_w_planes: int = 64,
    ):
        self.gridspec = gridspec
        self.config = IDGConfig()  # taper="spheroidal": what the kernels use
        self._gridder = WProjectionGridder(
            gridspec, support=support, oversample=oversample, n_w_planes=n_w_planes
        )

    def make_plan(self, uvw_m, frequencies_hz, baselines, aterm_schedule=None,
                  w_offset=0.0) -> _AdapterPlan:
        if aterm_schedule is not None and aterm_schedule.update_interval:
            raise NotImplementedError(
                "the W-projection adapter has no A-term support — "
                "the capability gap the paper's Section VI-E is about"
            )
        flagged = self._gridder.flagged_mask(uvw_m, frequencies_hz)
        self._frequencies = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
        return _AdapterPlan(flagged, self._frequencies.size)

    def grid(self, plan, uvw_m, visibilities, aterms=None, grid=None, flags=None):
        if aterms is not None and not getattr(aterms, "is_identity", False):
            raise NotImplementedError("W-projection cannot apply A-terms")
        vis = visibilities
        if flags is not None:
            vis = np.where(np.asarray(flags, bool)[..., None, None], 0, vis)
        return self._gridder.grid(uvw_m, self._frequencies, vis, grid=grid)

    def degrid(self, plan, uvw_m, grid, aterms=None):
        if aterms is not None and not getattr(aterms, "is_identity", False):
            raise NotImplementedError("W-projection cannot apply A-terms")
        return self._gridder.degrid(uvw_m, self._frequencies, grid)
