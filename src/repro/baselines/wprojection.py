"""W-projection gridding (Cornwell, Golap & Bhatnagar 2008; WPG of [19]).

Every visibility is convolved onto the master grid with an ``N_W x N_W``
kernel: the Fourier transform of the anti-aliasing taper times the w phase
screen for the visibility's w (quantised to a configurable number of
*w planes*).  The kernel table is oversampled (default 8x, as in the paper's
WPG comparison) to handle fractional cell offsets.

Per-visibility cost is ``4 * N_W**2`` complex multiply-adds versus IDG's
amortised per-pixel sums — the trade-off Fig 16 sweeps over ``N_W``.  Kernel
*storage* scales as ``n_planes * oversample**2 * N_W**2``, the memory cost
(quadratic in support and oversampling) that Section III holds against
traditional gridding.

The implementation vectorises over visibility chunks: fancy-indexed kernel
gathers, an outer product with the 4 polarisations, and a scatter-add
(``np.add.at``) into the grid — the NumPy analogue of the atomic adds a GPU
gridder performs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import COMPLEX_DTYPE, SPEED_OF_LIGHT
from repro.gridspec import GridSpec
from repro.kernels.convolution import OversampledKernel, _oversample_image_function
from repro.kernels.spheroidal import spheroidal_taper
from repro.kernels.wkernel import w_kernel_image


@dataclass(frozen=True)
class _FlatVisibilities:
    """Per-visibility quantities shared by grid and degrid paths."""

    cell_u: np.ndarray  # (M,) int grid cell
    cell_v: np.ndarray
    sub_u: np.ndarray  # (M,) int oversampled fractional index
    sub_v: np.ndarray
    plane: np.ndarray  # (M,) int w-plane index
    inside: np.ndarray  # (M,) bool — kernel footprint fits on the grid


class WProjectionGridder:
    """Convolutional gridder/degridder with w-plane kernels.

    Parameters
    ----------
    gridspec:
        Master grid geometry (shared with IDG for apples-to-apples tests).
    support:
        Kernel width ``N_W`` in uv cells.
    oversample:
        Fractional-offset table resolution (the paper's WPG uses 8).
    n_w_planes:
        Number of w quantisation planes spanning the observed w range
        (1 = pure anti-aliasing kernel, i.e. w correction disabled).
    kernel_raster:
        Image raster used to tabulate kernels.
    """

    def __init__(
        self,
        gridspec: GridSpec,
        support: int = 8,
        oversample: int = 8,
        n_w_planes: int = 32,
        kernel_raster: int = 64,
        chunk: int = 4096,
    ):
        if support <= 0 or support > gridspec.grid_size:
            raise ValueError("support must be in (0, grid_size]")
        if oversample <= 0:
            raise ValueError("oversample must be positive")
        if n_w_planes <= 0:
            raise ValueError("n_w_planes must be positive")
        if kernel_raster < support:
            raise ValueError("kernel_raster must be >= support")
        self.gridspec = gridspec
        self.support = support
        self.oversample = oversample
        self.n_w_planes = n_w_planes
        self.kernel_raster = kernel_raster
        self.chunk = chunk
        self._taper = spheroidal_taper(kernel_raster)
        # kernel tables keyed by (plane_index, sign); built lazily per w range
        self._tables: dict[tuple[int, int], np.ndarray] = {}
        self._plane_centres: np.ndarray | None = None

    # -------------------------------------------------------------- planes

    def set_w_range(self, w_min: float, w_max: float) -> None:
        """Fix the w-plane centres; called automatically by grid/degrid."""
        if w_max < w_min:
            raise ValueError("w_max must be >= w_min")
        if self.n_w_planes == 1:
            centres = np.array([0.0])
        else:
            centres = np.linspace(w_min, w_max, self.n_w_planes)
        if self._plane_centres is None or not np.array_equal(centres, self._plane_centres):
            self._plane_centres = centres
            self._tables.clear()

    def _kernel_table(self, plane: int, sign: int) -> np.ndarray:
        """(O, O, S, S) kernel table for one w plane and direction.

        ``sign=+1`` is the gridding (imaging) direction: the kernel value for
        a visibility at cell offset ``delta`` and fraction ``f`` is
        ``C(delta - f)`` with ``C = FT(taper * exp(+2*pi*i*w*n))``.

        ``sign=-1`` is degridding (prediction).  Interpolation evaluates the
        prediction kernel at the *opposite* argument, ``C'(f - delta)`` with
        ``C' = FT(taper * exp(-2*pi*i*w*n))``; by the reflection identity
        ``C'(-x) = conj(C(x))`` this is simply the conjugate of the gridding
        table at the same lookup — which also makes degridding the exact
        adjoint of gridding.
        """
        key = (plane, sign)
        if key not in self._tables:
            if sign < 0:
                self._tables[key] = np.conj(self._kernel_table(plane, +1))
            else:
                w = float(self._plane_centres[plane])
                screen = w_kernel_image(
                    w, self.kernel_raster, self.gridspec.image_size, sign=+1.0
                )
                table = _oversample_image_function(
                    screen * self._taper, self.support, self.oversample
                )
                self._tables[key] = table.astype(np.complex64)
        return self._tables[key]

    def kernel_storage_bytes(self) -> int:
        """Bytes of tabulated kernels currently cached — the storage cost the
        paper's Section VI-E discussion centres on."""
        return sum(t.nbytes for t in self._tables.values())

    # ------------------------------------------------------------- helpers

    def _flatten(
        self, uvw_m: np.ndarray, frequencies_hz: np.ndarray, w_offset: float = 0.0
    ) -> tuple[_FlatVisibilities, np.ndarray]:
        """Quantise every (baseline, time, channel) visibility onto the grid.

        Returns the flat index bundle plus the w values (for plane setup).
        ``w_offset`` (wavelengths) is subtracted from every w — the hook the
        W-stacking driver uses to grid residual w per plane.
        """
        frequencies_hz = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
        scale = frequencies_hz / SPEED_OF_LIGHT
        gs = self.gridspec
        g = gs.grid_size
        # (n_bl, T, C) pixel coordinates
        pu = uvw_m[:, :, 0, np.newaxis] * scale * gs.image_size + g // 2
        pv = uvw_m[:, :, 1, np.newaxis] * scale * gs.image_size + g // 2
        w_wl = uvw_m[:, :, 2, np.newaxis] * scale - w_offset

        pu, pv, w_wl = pu.ravel(), pv.ravel(), w_wl.ravel()

        def quantise(p):
            """Nearest cell + signed sub-cell index in [-O/2 + 1, +O/2].

            A fraction of ~-0.5 must not wrap onto the +O/2 sub-kernel of the
            *same* cell (a full-cell error); re-anchor it to the next lower
            cell, where it becomes a +0.5 fraction.
            """
            cell = np.rint(p).astype(np.int64)
            r = np.rint((p - cell) * self.oversample).astype(np.int64)
            wrap = r <= -(self.oversample // 2)
            cell = cell - wrap
            r = np.where(wrap, self.oversample // 2, r)
            return cell, r % self.oversample

        cell_u, sub_u = quantise(pu)
        cell_v, sub_v = quantise(pv)

        half = self.support // 2
        inside = (
            (cell_u - half >= 0)
            & (cell_u - half + self.support <= g)
            & (cell_v - half >= 0)
            & (cell_v - half + self.support <= g)
        )

        if self._plane_centres is None:
            self.set_w_range(float(w_wl.min()), float(w_wl.max()))
        centres = self._plane_centres
        if self.n_w_planes == 1:
            plane = np.zeros(w_wl.size, dtype=np.int64)
        else:
            step = centres[1] - centres[0]
            plane = np.clip(
                np.rint((w_wl - centres[0]) / step).astype(np.int64), 0, len(centres) - 1
            )
        return (
            _FlatVisibilities(cell_u, cell_v, sub_u, sub_v, plane, inside),
            w_wl,
        )

    # ------------------------------------------------------------- gridding

    def grid(
        self,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
        visibilities: np.ndarray,
        grid: np.ndarray | None = None,
        w_offset: float = 0.0,
    ) -> np.ndarray:
        """Grid a ``(n_bl, T, C, 2, 2)`` visibility set; returns ``(4, G, G)``."""
        gs = self.gridspec
        if grid is None:
            grid = gs.allocate_grid(dtype=COMPLEX_DTYPE)
        flat, w_wl = self._flatten(uvw_m, frequencies_hz, w_offset=w_offset)
        vis_flat = np.asarray(visibilities).reshape(-1, 4)
        s = self.support
        half = s // 2
        g = gs.grid_size
        offsets = np.arange(s) - half

        grid_flat = grid.reshape(4, g * g)
        idx_all = np.flatnonzero(flat.inside)
        for start in range(0, idx_all.size, self.chunk):
            sel = idx_all[start : start + self.chunk]
            # group by w plane so each chunk uses one kernel table
            for plane in np.unique(flat.plane[sel]):
                table = self._kernel_table(int(plane), sign=+1)
                sub = sel[flat.plane[sel] == plane]
                kernels = table[flat.sub_v[sub], flat.sub_u[sub]]  # (m, S, S)
                # scatter indices: (m, S, S)
                rows = flat.cell_v[sub, np.newaxis] + offsets[np.newaxis, :]
                cols = flat.cell_u[sub, np.newaxis] + offsets[np.newaxis, :]
                cell_idx = (rows[:, :, np.newaxis] * g + cols[:, np.newaxis, :]).reshape(
                    sub.size, -1
                )
                contrib = kernels.reshape(sub.size, -1)
                for pol in range(4):
                    np.add.at(
                        grid_flat[pol],
                        cell_idx.ravel(),
                        (contrib * vis_flat[sub, pol, np.newaxis]).ravel(),
                    )
        return grid

    # ----------------------------------------------------------- degridding

    def degrid(
        self,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
        grid: np.ndarray,
        w_offset: float = 0.0,
    ) -> np.ndarray:
        """Predict visibilities from a model grid; zeros where the kernel
        footprint falls off the grid."""
        gs = self.gridspec
        g = gs.grid_size
        n_bl, n_times, _ = uvw_m.shape
        n_chan = np.atleast_1d(np.asarray(frequencies_hz)).size
        flat, _ = self._flatten(uvw_m, frequencies_hz, w_offset=w_offset)
        out = np.zeros((n_bl * n_times * n_chan, 4), dtype=np.complex64)
        s = self.support
        half = s // 2
        offsets = np.arange(s) - half
        grid_flat = grid.reshape(4, g * g)

        idx_all = np.flatnonzero(flat.inside)
        for start in range(0, idx_all.size, self.chunk):
            sel = idx_all[start : start + self.chunk]
            for plane in np.unique(flat.plane[sel]):
                table = self._kernel_table(int(plane), sign=-1)
                sub = sel[flat.plane[sel] == plane]
                kernels = table[flat.sub_v[sub], flat.sub_u[sub]].reshape(sub.size, -1)
                rows = flat.cell_v[sub, np.newaxis] + offsets[np.newaxis, :]
                cols = flat.cell_u[sub, np.newaxis] + offsets[np.newaxis, :]
                cell_idx = (rows[:, :, np.newaxis] * g + cols[:, np.newaxis, :]).reshape(
                    sub.size, -1
                )
                for pol in range(4):
                    patches = grid_flat[pol][cell_idx]  # (m, S*S)
                    out[sub, pol] = (patches * kernels).sum(axis=1)
        return out.reshape(n_bl, n_times, n_chan, 2, 2)

    # -------------------------------------------------------------- metrics

    def flagged_mask(self, uvw_m: np.ndarray, frequencies_hz: np.ndarray) -> np.ndarray:
        """(n_bl, T, C) True where a visibility cannot be gridded."""
        n_bl, n_times, _ = uvw_m.shape
        n_chan = np.atleast_1d(np.asarray(frequencies_hz)).size
        flat, _ = self._flatten(uvw_m, frequencies_hz)
        return (~flat.inside).reshape(n_bl, n_times, n_chan)

    def operations_per_visibility(self) -> int:
        """Real multiply-add count per visibility: 4 pol x N_W^2 complex MACs
        (x4 real MACs each) — the cost model behind Fig 16."""
        return 4 * self.support * self.support * 4
