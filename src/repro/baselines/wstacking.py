"""W-stacking (Offringa et al. 2014, WSClean's approach).

The w range is split into ``n_planes`` planes; each plane gets its own grid
copy.  Visibilities are gridded onto their nearest plane with a *small*
residual-w kernel (delegated to :class:`WProjectionGridder` with the residual
range), each plane's grid is inverse-FFT'd, multiplied by the plane's exact
image-domain w screen ``exp(+2*pi*i*w_p*n(l, m))``, and the corrected images
are summed.  Prediction runs the same pipeline in reverse.

This is the memory/compute trade the paper discusses: more planes → smaller
kernels (cheaper gridding) but one full grid per plane; IDG with large
subgrids "dramatically limit[s] the number of required W-planes"
(Section IV) — the ablation benchmark sweeps both.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.wprojection import WProjectionGridder
from repro.constants import COMPLEX_DTYPE, SPEED_OF_LIGHT
from repro.gridspec import GridSpec
from repro.kernels.fft import centered_fft2, centered_ifft2
from repro.kernels.spheroidal import grid_correction
from repro.kernels.wkernel import w_kernel_image


class WStackingGridder:
    """W-stacking imaging/prediction built on per-plane W-projection.

    Parameters
    ----------
    gridspec:
        Master grid geometry.
    n_planes:
        Number of w planes (grid copies).
    support:
        Residual-w kernel support per plane.
    inner_w_planes:
        w quantisation steps *within* a plane's residual range.
    """

    def __init__(
        self,
        gridspec: GridSpec,
        n_planes: int = 8,
        support: int = 8,
        oversample: int = 8,
        inner_w_planes: int = 8,
        kernel_raster: int = 64,
    ):
        if n_planes <= 0:
            raise ValueError("n_planes must be positive")
        self.gridspec = gridspec
        self.n_planes = n_planes
        self.support = support
        self.oversample = oversample
        self.inner_w_planes = inner_w_planes
        self.kernel_raster = kernel_raster

    # ------------------------------------------------------------- helpers

    def _plane_assignment(
        self, uvw_m: np.ndarray, frequencies_hz: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(plane_centres, per-visibility plane index, w in wavelengths)."""
        frequencies_hz = np.atleast_1d(np.asarray(frequencies_hz, dtype=np.float64))
        scale = frequencies_hz / SPEED_OF_LIGHT
        w_wl = (uvw_m[:, :, 2, np.newaxis] * scale)  # (n_bl, T, C)
        w_min, w_max = float(w_wl.min()), float(w_wl.max())
        if self.n_planes == 1:
            centres = np.array([0.5 * (w_min + w_max)])
            idx = np.zeros_like(w_wl, dtype=np.int64)
        else:
            centres = np.linspace(w_min, w_max, self.n_planes)
            step = centres[1] - centres[0]
            idx = np.clip(
                np.rint((w_wl - centres[0]) / step).astype(np.int64), 0, self.n_planes - 1
            )
        return centres, idx, w_wl

    def _validate_visibilities(
        self, uvw_m: np.ndarray, frequencies_hz: np.ndarray, visibilities: np.ndarray
    ) -> None:
        """Reject mis-shaped visibility arrays up front.

        Without this, a wrong-shaped array broadcasts silently through the
        ``np.where`` plane masking below and grids garbage.
        """
        n_bl, n_times, _ = uvw_m.shape
        n_chan = np.atleast_1d(np.asarray(frequencies_hz)).size
        expected = (n_bl, n_times, n_chan, 2, 2)
        if visibilities.shape != expected:
            raise ValueError(
                f"visibilities must have shape {expected}, got {visibilities.shape}"
            )

    def _plane_gridder(self, residual_w: np.ndarray) -> WProjectionGridder:
        """Inner gridder whose w quantisation covers one plane's residuals.

        The inner gridder would otherwise set its w range lazily from *all*
        visibilities — including the zero-filled off-plane ones, whose large
        residual w would stretch the quantisation over the full stack range.
        In-plane visibilities then match against kernels tabulated for far-off
        w values, losing energy to kernel truncation and skewing the taper
        normalisation.  Pinning the range to the plane's own residuals keeps
        the kernels (and hence the per-visibility weight) accurate.
        """
        gridder = self._inner_gridder()
        if residual_w.size:
            gridder.set_w_range(float(residual_w.min()), float(residual_w.max()))
        return gridder

    def _inner_gridder(self) -> WProjectionGridder:
        return WProjectionGridder(
            self.gridspec,
            support=self.support,
            oversample=self.oversample,
            n_w_planes=self.inner_w_planes,
            kernel_raster=self.kernel_raster,
        )

    def _w_screen(self, w: float, sign: float) -> np.ndarray:
        return w_kernel_image(w, self.gridspec.grid_size, self.gridspec.image_size, sign=sign)

    # -------------------------------------------------------------- imaging

    def image(
        self,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
        visibilities: np.ndarray,
        weight_sum: float | None = None,
    ) -> np.ndarray:
        """Dirty image (4, G, G, complex) of a visibility set.

        Grid correction and weight normalisation are applied; reduce with
        :func:`repro.imaging.image.stokes_i_image` for a real Stokes-I map.
        """
        self._validate_visibilities(uvw_m, frequencies_hz, visibilities)
        centres, plane_idx, w_wl = self._plane_assignment(uvw_m, frequencies_hz)
        g = self.gridspec.grid_size
        accum = np.zeros((4, g, g), dtype=np.complex128)
        total_gridded = 0
        for p, w_p in enumerate(centres):
            mask = plane_idx == p
            if not mask.any():
                continue
            # zero out visibilities not in this plane; the gridder skips
            # nothing but adds zeros, keeping uvw/vis shapes aligned.
            vis_plane = np.where(
                mask[..., np.newaxis, np.newaxis], visibilities, 0
            ).astype(COMPLEX_DTYPE)
            gridder = self._plane_gridder(w_wl[mask] - float(w_p))
            grid = gridder.grid(uvw_m, frequencies_hz, vis_plane, w_offset=float(w_p))
            flagged = gridder.flagged_mask(uvw_m, frequencies_hz)
            total_gridded += int((mask & ~flagged).sum())
            image_p = centered_ifft2(grid, axes=(-2, -1)) * (g * g)
            accum += image_p * self._w_screen(float(w_p), sign=+1.0)
        if weight_sum is None:
            weight_sum = max(total_gridded, 1)
        corr = grid_correction(g)
        return accum / weight_sum / corr

    # ------------------------------------------------------------ predicting

    def predict(
        self,
        model_image: np.ndarray,
        uvw_m: np.ndarray,
        frequencies_hz: np.ndarray,
    ) -> np.ndarray:
        """Predict visibilities of a (4, G, G) model image."""
        g = self.gridspec.grid_size
        if model_image.shape != (4, g, g):
            raise ValueError(f"model image must be (4, {g}, {g}), got {model_image.shape}")
        centres, plane_idx, w_wl = self._plane_assignment(uvw_m, frequencies_hz)
        corr = grid_correction(g)
        pre = model_image / corr
        n_bl, n_times, _ = uvw_m.shape
        n_chan = np.atleast_1d(np.asarray(frequencies_hz)).size
        out = np.zeros((n_bl, n_times, n_chan, 2, 2), dtype=COMPLEX_DTYPE)
        for p, w_p in enumerate(centres):
            mask = plane_idx == p
            if not mask.any():
                continue
            screened = pre * self._w_screen(float(w_p), sign=-1.0)
            grid = centered_fft2(screened, axes=(-2, -1)).astype(COMPLEX_DTYPE)
            gridder = self._plane_gridder(w_wl[mask] - float(w_p))
            pred = gridder.degrid(uvw_m, frequencies_hz, grid, w_offset=float(w_p))
            out[mask] = pred[mask]
        return out

    # -------------------------------------------------------------- metrics

    def memory_bytes(self) -> int:
        """Grid-copy memory: the W-stacking cost the paper contrasts with
        IDG's subgrids ("prohibitively memory consuming for high-resolution
        images")."""
        g = self.gridspec.grid_size
        return self.n_planes * 4 * g * g * np.dtype(COMPLEX_DTYPE).itemsize
