"""A-term update schedule.

A-terms change slowly compared to the integration time; the paper's benchmark
"updates [them] every 256 time steps".  The schedule maps a timestep index to
its A-term interval and tells the execution plan where it must cut subgrids
(a subgrid may only span timesteps sharing one A-term interval, because the
correction is applied once per subgrid).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ATermSchedule:
    """Uniform A-term update cadence.

    Attributes
    ----------
    update_interval:
        Number of timesteps sharing one A-term evaluation (paper: 256).
        ``0`` (with ``n_times`` arbitrary) means a single interval for the
        whole observation.
    """

    update_interval: int = 0

    def __post_init__(self) -> None:
        if self.update_interval < 0:
            raise ValueError("update_interval must be >= 0")

    def interval_of(self, time_index: int | np.ndarray) -> int | np.ndarray:
        """A-term interval index for timestep(s)."""
        if self.update_interval == 0:
            return np.zeros_like(np.asarray(time_index)) if np.ndim(time_index) else 0
        return np.asarray(time_index) // self.update_interval if np.ndim(time_index) else int(
            time_index
        ) // self.update_interval

    def n_intervals(self, n_times: int) -> int:
        if self.update_interval == 0:
            return 1
        return (n_times + self.update_interval - 1) // self.update_interval

    def boundaries(self, n_times: int) -> np.ndarray:
        """Timestep indices at which a new interval starts (excluding 0)."""
        if self.update_interval == 0:
            return np.empty(0, dtype=np.int64)
        return np.arange(self.update_interval, n_times, self.update_interval, dtype=np.int64)

    def same_interval(self, t0: int, t1: int) -> bool:
        """True if timesteps ``t0`` and ``t1`` share an A-term evaluation."""
        return int(self.interval_of(t0)) == int(self.interval_of(t1))
