"""Vectorised 2x2 Jones-matrix algebra.

All functions operate on arrays of shape ``(..., 2, 2)`` and broadcast over
the leading axes, so a Jones *field* over an ``(n, n)`` image raster is simply
an ``(n, n, 2, 2)`` array.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.contracts import shape_checked
from repro.constants import ACCUM_DTYPE


def identity_jones(shape: tuple[int, ...] = (), dtype=ACCUM_DTYPE) -> np.ndarray:
    """Identity Jones field of shape ``shape + (2, 2)``."""
    out = np.zeros(shape + (2, 2), dtype=dtype)
    out[..., 0, 0] = 1.0
    out[..., 1, 1] = 1.0
    return out


@shape_checked(returns="(n, n, 2, 2)")
def identity_jones_field(n: int, dtype=ACCUM_DTYPE) -> np.ndarray:
    """Identity Jones field over an ``(n, n)`` image raster.

    The shared "no A-term" stand-in used by the gridder, degridder and
    reference kernels whenever only one station of a pair has a field.
    """
    return identity_jones((n, n), dtype=dtype)


def jones_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product ``a @ b`` over the trailing 2x2 axes (broadcasting)."""
    return np.einsum("...ij,...jk->...ik", a, b)


def hermitian(a: np.ndarray) -> np.ndarray:
    """Conjugate transpose over the trailing 2x2 axes."""
    return np.conj(np.swapaxes(a, -1, -2))


@shape_checked(a_p="(..., 2, 2)", b="(..., 2, 2)", a_q="(..., 2, 2)", returns="(..., 2, 2)")
def apply_sandwich(a_p: np.ndarray, b: np.ndarray, a_q: np.ndarray) -> np.ndarray:
    """``A_p @ B @ A_q^H`` — the measurement-equation corruption of brightness.

    This is the forward direction (degridding / prediction).  The adjoint used
    in gridding is ``A_p^H @ S @ A_q`` (see :mod:`repro.core.gridder`).
    """
    return jones_multiply(jones_multiply(a_p, b), hermitian(a_q))


@shape_checked(a_p="(..., 2, 2)", s="(..., 2, 2)", a_q="(..., 2, 2)", returns="(..., 2, 2)")
def apply_adjoint_sandwich(a_p: np.ndarray, s: np.ndarray, a_q: np.ndarray) -> np.ndarray:
    """``A_p^H @ S @ A_q`` — the adjoint correction applied by the gridder."""
    return jones_multiply(jones_multiply(hermitian(a_p), s), a_q)


def jones_inverse(a: np.ndarray) -> np.ndarray:
    """Inverse of each 2x2 matrix (closed form, broadcasting).

    Raises ``LinAlgError`` if any matrix is singular (determinant 0).
    """
    det = a[..., 0, 0] * a[..., 1, 1] - a[..., 0, 1] * a[..., 1, 0]
    if np.any(det == 0):
        raise np.linalg.LinAlgError("singular Jones matrix")
    out = np.empty_like(a)
    out[..., 0, 0] = a[..., 1, 1]
    out[..., 1, 1] = a[..., 0, 0]
    out[..., 0, 1] = -a[..., 0, 1]
    out[..., 1, 0] = -a[..., 1, 0]
    return out / det[..., np.newaxis, np.newaxis]


def frobenius_norm(a: np.ndarray) -> np.ndarray:
    """Frobenius norm over the trailing 2x2 axes."""
    return np.sqrt((np.abs(a) ** 2).sum(axis=(-2, -1)))
