"""Direction-dependent effects: 2x2 Jones matrices ("A-terms").

The A-terms of the measurement equation (paper Eq. 1) are per-station,
time-variable 2x2 matrix fields over the sky.  IDG applies them as image-
domain multiplications on each subgrid at negligible cost — the paper's core
argument against AW-projection, which must bake them into per-baseline
convolution kernels.

``jones`` provides vectorised 2x2 algebra, ``generators`` a family of A-term
models (identity, Gaussian primary beam, pointing errors, ionospheric phase
screens), and ``schedule`` the update cadence (the benchmark updates A-terms
every 256 timesteps).
"""

from repro.aterms.jones import (
    apply_sandwich,
    hermitian,
    identity_jones,
    identity_jones_field,
    jones_multiply,
)
from repro.aterms.generators import (
    ATermGenerator,
    GainATerm,
    GaussianBeamATerm,
    IdentityATerm,
    IonosphereATerm,
    LeakageATerm,
    PointingErrorATerm,
    ProductATerm,
)
from repro.aterms.schedule import ATermSchedule

__all__ = [
    "apply_sandwich",
    "hermitian",
    "identity_jones",
    "identity_jones_field",
    "jones_multiply",
    "ATermGenerator",
    "GainATerm",
    "GaussianBeamATerm",
    "IdentityATerm",
    "IonosphereATerm",
    "LeakageATerm",
    "PointingErrorATerm",
    "ProductATerm",
    "ATermSchedule",
]
