"""A-term generators.

Every generator is a deterministic function of ``(station, interval)`` — two
calls with the same arguments return identical Jones fields, which is what
lets the direct measurement-equation oracle and the gridders agree on the
corruption.  ``interval`` is the A-term update interval index produced by
:class:`repro.aterms.schedule.ATermSchedule` (the paper's benchmark updates
A-terms every 256 timesteps).

Generators evaluate either at arbitrary sky directions (``evaluate`` — used
by the direct predictor at point-source positions) or on a centered image
raster (``evaluate_raster`` — used by IDG on subgrids and by AW-projection
when baking kernels).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.constants import ACCUM_DTYPE
from repro.kernels.fft import image_coordinates
from repro.aterms.jones import identity_jones


class ATermGenerator(abc.ABC):
    """Interface: per-station, per-interval 2x2 Jones fields over the sky."""

    @abc.abstractmethod
    def evaluate(self, station: int, interval: int, l: np.ndarray, m: np.ndarray) -> np.ndarray:
        """Jones matrices at directions ``(l, m)``; returns ``l.shape + (2, 2)``."""

    def evaluate_raster(
        self, station: int, interval: int, n_pixels: int, image_size: float
    ) -> np.ndarray:
        """Jones field on a centered ``n_pixels`` raster: ``(n, n, 2, 2)``."""
        coords = image_coordinates(n_pixels, image_size)
        ll = np.broadcast_to(coords[np.newaxis, :], (n_pixels, n_pixels))
        mm = np.broadcast_to(coords[:, np.newaxis], (n_pixels, n_pixels))
        return self.evaluate(station, interval, ll, mm)

    @property
    def is_identity(self) -> bool:
        """True if the generator always returns the identity (fast paths)."""
        return False

    def _rng(self, seed: int, station: int, interval: int) -> np.random.Generator:
        """Deterministic per-(station, interval) generator."""
        return np.random.default_rng(np.random.SeedSequence([seed, station, interval]))


class IdentityATerm(ATermGenerator):
    """No direction-dependent effects (the paper's benchmark setting:
    "the A-terms (for simplicity, all set to identity)")."""

    def evaluate(self, station: int, interval: int, l: np.ndarray, m: np.ndarray) -> np.ndarray:
        l = np.asarray(l)
        return identity_jones(l.shape)

    @property
    def is_identity(self) -> bool:
        return True


class GaussianBeamATerm(ATermGenerator):
    """Scalar Gaussian primary beam, optionally drifting in gain per interval.

    ``A = g(l, m) * eye`` with
    ``g = exp(-4 ln 2 ((l**2 + m**2) / fwhm**2))``; per-interval gain drift
    models slow beam-gain variation.
    """

    def __init__(self, fwhm: float, gain_drift_rms: float = 0.0, seed: int = 1):
        if fwhm <= 0:
            raise ValueError("fwhm must be positive")
        self.fwhm = float(fwhm)
        self.gain_drift_rms = float(gain_drift_rms)
        self.seed = int(seed)

    def evaluate(self, station: int, interval: int, l: np.ndarray, m: np.ndarray) -> np.ndarray:
        l = np.asarray(l, dtype=np.float64)
        m = np.asarray(m, dtype=np.float64)
        gain = np.exp(-4.0 * np.log(2.0) * (l * l + m * m) / (self.fwhm**2))
        if self.gain_drift_rms:
            rng = self._rng(self.seed, station, interval)
            gain = gain * (1.0 + self.gain_drift_rms * rng.standard_normal())
        out = identity_jones(l.shape)
        return out * gain[..., np.newaxis, np.newaxis]


class PointingErrorATerm(ATermGenerator):
    """Gaussian beam whose centre wanders per station and interval.

    The pointing offset performs a deterministic pseudo-random walk with rms
    step ``pointing_rms`` (direction cosines).  This is the classic DDE that
    motivates A-projection (Bhatnagar et al. 2008).
    """

    def __init__(self, fwhm: float, pointing_rms: float, seed: int = 2):
        if fwhm <= 0:
            raise ValueError("fwhm must be positive")
        self.fwhm = float(fwhm)
        self.pointing_rms = float(pointing_rms)
        self.seed = int(seed)

    def _offset(self, station: int, interval: int) -> tuple[float, float]:
        rng = self._rng(self.seed, station, interval)
        dl, dm = rng.standard_normal(2) * self.pointing_rms
        return float(dl), float(dm)

    def evaluate(self, station: int, interval: int, l: np.ndarray, m: np.ndarray) -> np.ndarray:
        l = np.asarray(l, dtype=np.float64)
        m = np.asarray(m, dtype=np.float64)
        dl, dm = self._offset(station, interval)
        r2 = (l - dl) ** 2 + (m - dm) ** 2
        gain = np.exp(-4.0 * np.log(2.0) * r2 / (self.fwhm**2))
        out = identity_jones(l.shape)
        return out * gain[..., np.newaxis, np.newaxis]


class LeakageATerm(ATermGenerator):
    """Polarisation leakage: a full 2x2 Jones field with off-diagonal terms.

    Models instrumental cross-polarisation: each station and interval gets a
    random, direction-*linear* leakage field

    ``A = [[1, d_xy(l, m)], [d_yx(l, m), 1]]``

    with ``d = d0 + d1 * l + d2 * m`` and coefficients of rms
    ``leakage_rms``.  Unlike the scalar beam/ionosphere generators, this
    exercises the full Jones sandwich in the gridder/degridder (and is
    rejected by the scalar-only AW-projection baseline — exactly the IDG
    selling point).
    """

    def __init__(self, leakage_rms: float, field_of_view: float, seed: int = 4):
        if field_of_view <= 0:
            raise ValueError("field_of_view must be positive")
        if leakage_rms < 0:
            raise ValueError("leakage_rms must be >= 0")
        self.leakage_rms = float(leakage_rms)
        self.field_of_view = float(field_of_view)
        self.seed = int(seed)

    def evaluate(self, station: int, interval: int, l: np.ndarray, m: np.ndarray) -> np.ndarray:
        l = np.asarray(l, dtype=np.float64)
        m = np.asarray(m, dtype=np.float64)
        rng = self._rng(self.seed, station, interval)
        coeff = self.leakage_rms * (
            rng.standard_normal(6) + 1j * rng.standard_normal(6)
        ) / np.sqrt(2.0)
        scale = 2.0 / self.field_of_view
        ln, mn = l * scale, m * scale
        d_xy = coeff[0] + coeff[1] * ln + coeff[2] * mn
        d_yx = coeff[3] + coeff[4] * ln + coeff[5] * mn
        out = identity_jones(l.shape)
        out[..., 0, 1] = d_xy
        out[..., 1, 0] = d_yx
        return out


class GainATerm(ATermGenerator):
    """Direction-independent station gains as (flat) Jones fields.

    The self-calibration loop folds StEFCal solutions back into the gridder
    through this generator — the gains become A-terms on the existing
    :class:`~repro.aterms.schedule.ATermSchedule`, so the calibrated image
    falls out of an ordinary (re-)gridding pass instead of a separate
    visibility-correction step.

    Two modes, matching the two sides of the measurement equation:

    * ``mode="corrupt"``: ``A_s = g_s * I``.  Degridding applies the forward
      sandwich ``A_p B A_q^H``, predicting *corrupted* visibilities
      ``g_p M conj(g_q)`` from a true-sky model.
    * ``mode="calibrate"``: ``A_s = (1 / conj(g_s)) * I``.  Gridding applies
      the adjoint sandwich ``A_p^H S A_q = (1/g_p) V (1/conj(g_q))``, which
      undoes exactly that corruption while imaging.

    Parameters
    ----------
    gains:
        ``(n_intervals, n_stations)`` complex gains (a 1-D array is treated
        as one interval).  The A-term interval index passed by the gridder
        is clamped to the last row, so a schedule with more intervals than
        solutions reuses the final solution.
    mode:
        ``"corrupt"`` or ``"calibrate"``.
    """

    def __init__(self, gains: np.ndarray, mode: str = "corrupt"):
        gains = np.atleast_2d(np.asarray(gains, dtype=ACCUM_DTYPE))
        if gains.ndim != 2:
            raise ValueError("gains must be (n_intervals, n_stations)")
        if mode not in ("corrupt", "calibrate"):
            raise ValueError(f"mode must be 'corrupt' or 'calibrate', got {mode!r}")
        if mode == "calibrate" and np.any(gains == 0):
            raise ValueError("cannot calibrate with a zero gain")
        self.gains = gains
        self.mode = mode

    def _factor(self, station: int, interval: int) -> complex:
        """The scalar this station's Jones field multiplies the identity by."""
        n_intervals, n_stations = self.gains.shape
        if not (0 <= station < n_stations):
            raise ValueError(f"station {station} out of range [0, {n_stations})")
        g = self.gains[min(max(interval, 0), n_intervals - 1), station]
        if self.mode == "corrupt":
            return complex(g)
        return complex(1.0 / np.conj(g))

    def evaluate(self, station: int, interval: int, l: np.ndarray, m: np.ndarray) -> np.ndarray:
        l = np.asarray(l)
        return identity_jones(l.shape) * self._factor(station, interval)


class ProductATerm(ATermGenerator):
    """Jones-matrix product of several generators: ``A = A_1 @ A_2 @ ...``.

    Composes independent effects — e.g. a primary beam times a gain
    solution — in measurement-equation order (leftmost applied last to the
    sky signal).
    """

    def __init__(self, *generators: ATermGenerator):
        if not generators:
            raise ValueError("ProductATerm needs at least one generator")
        self.generators = tuple(generators)

    def evaluate(self, station: int, interval: int, l: np.ndarray, m: np.ndarray) -> np.ndarray:
        out = self.generators[0].evaluate(station, interval, l, m)
        for generator in self.generators[1:]:
            out = out @ generator.evaluate(station, interval, l, m)
        return out

    @property
    def is_identity(self) -> bool:
        return all(g.is_identity for g in self.generators)


class IonosphereATerm(ATermGenerator):
    """Differential ionospheric phase: ``A = exp(i phi(l, m)) * eye``.

    ``phi`` is a low-order polynomial phase screen with random coefficients
    per (station, interval), rms-normalised to ``rms_rad`` at the field edge
    — a compact stand-in for a Kolmogorov screen that keeps the A-term
    spatially smooth (as IDG's subgrid resolution requires).
    """

    def __init__(self, rms_rad: float, field_of_view: float, seed: int = 3):
        if field_of_view <= 0:
            raise ValueError("field_of_view must be positive")
        self.rms_rad = float(rms_rad)
        self.field_of_view = float(field_of_view)
        self.seed = int(seed)

    def phase(self, station: int, interval: int, l: np.ndarray, m: np.ndarray) -> np.ndarray:
        """The scalar phase screen in radians (exposed for tests)."""
        rng = self._rng(self.seed, station, interval)
        c = rng.standard_normal(5)
        scale = 2.0 / self.field_of_view  # normalise coordinates to ~[-1, 1]
        ln = np.asarray(l, dtype=np.float64) * scale
        mn = np.asarray(m, dtype=np.float64) * scale
        raw = c[0] * ln + c[1] * mn + c[2] * ln * mn + c[3] * (ln * ln - mn * mn) + c[4] * (
            ln * ln + mn * mn
        )
        # rms of the raw polynomial over the unit square is O(1); scale to rms_rad.
        return self.rms_rad * raw / np.sqrt(5.0 / 3.0)

    def evaluate(self, station: int, interval: int, l: np.ndarray, m: np.ndarray) -> np.ndarray:
        phi = self.phase(station, interval, l, m)
        out = identity_jones(np.asarray(l).shape)
        return out * np.exp(1j * phi)[..., np.newaxis, np.newaxis]
