"""Parallel execution of the IDG pipeline on the host.

The paper's CPU implementation distributes work items over cores with OpenMP
and parallelises the adder over grid *rows* (subgrids overlap, so per-subgrid
parallel adds would race — Section V-B-d).  The Python analogue uses a thread
pool: the heavy lifting inside each work item is BLAS/FFT calls that release
the GIL, so threads scale, and the row-partitioned adder gives each worker a
disjoint horizontal band of the grid.
"""

from repro.parallel.batching import chunk_ranges, interleaved_ranges
from repro.parallel.bucketing import (
    Bucket,
    bucket_work_items,
    degrid_work_group_batched,
    grid_work_group_batched,
)
from repro.parallel.partition import RowPartition, add_subgrids_row_parallel
from repro.parallel.executor import ParallelIDG

__all__ = [
    "chunk_ranges",
    "interleaved_ranges",
    "Bucket",
    "bucket_work_items",
    "grid_work_group_batched",
    "degrid_work_group_batched",
    "RowPartition",
    "add_subgrids_row_parallel",
    "ParallelIDG",
]
