"""Parallel execution of the IDG pipeline on the host.

The paper's CPU implementation distributes work items over cores with OpenMP
and parallelises the adder over grid *rows* (subgrids overlap, so per-subgrid
parallel adds would race — Section V-B-d).  The Python analogue uses a thread
pool: the heavy lifting inside each work item is BLAS/FFT calls that release
the GIL, so threads scale, and the row-partitioned adder gives each worker a
disjoint horizontal band of the grid.
"""

from repro.parallel.batching import chunk_ranges, interleaved_ranges
from repro.parallel.bucketing import (
    Bucket,
    bucket_work_items,
    degrid_work_group_batched,
    grid_work_group_batched,
)
from repro.parallel.partition import (
    RowPartition,
    ShardAssignment,
    add_subgrids_row_parallel,
    partition_work_groups,
    plan_group_weights,
)
from repro.parallel.shm import ArenaSpec, SharedArena, shm_dir_entries
from repro.parallel.executor import ParallelIDG, WorkGroupError
from repro.parallel.process import ProcessConfig, ProcessShardedIDG, WorkerDeath

__all__ = [
    "chunk_ranges",
    "interleaved_ranges",
    "Bucket",
    "bucket_work_items",
    "grid_work_group_batched",
    "degrid_work_group_batched",
    "RowPartition",
    "ShardAssignment",
    "add_subgrids_row_parallel",
    "partition_work_groups",
    "plan_group_weights",
    "ArenaSpec",
    "SharedArena",
    "shm_dir_entries",
    "ParallelIDG",
    "WorkGroupError",
    "ProcessConfig",
    "ProcessShardedIDG",
    "WorkerDeath",
]
