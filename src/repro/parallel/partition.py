"""Work partitioning: grid rows for the adder, work groups for shards.

Two partition strategies live here:

* :class:`RowPartition` — the paper's Section V-B-d row-banded adder: each
  worker owns a horizontal band of the master grid, so overlapping subgrids
  never race on a pixel.
* :func:`partition_work_groups` — the shard partitioner of the
  process-sharded executor (DESIGN.md §14): work groups are distributed over
  worker processes by greedy longest-processing-time (LPT) assignment on
  their visibility weights.  The assignment is a pure function of the
  weights (groups are canonically ordered before placement), so it is stable
  under permutation of the input order, every group lands on exactly one
  shard, and the heaviest shard carries at most ``total/n_shards`` plus one
  group's weight — the classic LPT balance bound, pinned by the hypothesis
  suite in ``tests/parallel/test_partition_properties.py``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.adder import _pol_major
from repro.core.plan import Plan
from repro.parallel.batching import chunk_ranges


@dataclass(frozen=True)
class RowPartition:
    """A disjoint partition of the grid's rows into horizontal bands."""

    grid_size: int
    bands: tuple[tuple[int, int], ...]

    @classmethod
    def create(cls, grid_size: int, n_workers: int) -> "RowPartition":
        return cls(grid_size=grid_size, bands=tuple(chunk_ranges(grid_size, n_workers)))

    def covers_all_rows(self) -> bool:
        seen = np.zeros(self.grid_size, dtype=bool)
        for lo, hi in self.bands:
            if seen[lo:hi].any():
                return False
            seen[lo:hi] = True
        return bool(seen.all())


def _add_band(
    grid: np.ndarray,
    plan: Plan,
    subgrids_pol: np.ndarray,
    start: int,
    band: tuple[int, int],
) -> None:
    """Add the band-intersecting rows of every subgrid (one worker's share)."""
    lo, hi = band
    n = plan.subgrid_size
    for k in range(subgrids_pol.shape[0]):
        row = plan.items[start + k]
        cu, cv = int(row["corner_u"]), int(row["corner_v"])
        r0 = max(cv, lo)
        r1 = min(cv + n, hi)
        if r0 >= r1:
            continue
        grid[:, r0:r1, cu : cu + n] += subgrids_pol[k, :, r0 - cv : r1 - cv, :]


@dataclass(frozen=True)
class ShardAssignment:
    """A disjoint assignment of work groups to shards (worker processes).

    Attributes
    ----------
    n_shards:
        Shard count the groups were distributed over.
    weights:
        Per-group weights the assignment balanced (visibility counts).
    shard_of:
        ``shard_of[group]`` is the shard owning that work group.
    """

    n_shards: int
    weights: tuple[int, ...]
    shard_of: tuple[int, ...]

    @property
    def n_groups(self) -> int:
        return len(self.shard_of)

    def groups_for(self, shard: int) -> tuple[int, ...]:
        """The work groups of one shard, in ascending (plan) order."""
        if not (0 <= shard < self.n_shards):
            raise ValueError(f"shard {shard} out of range [0, {self.n_shards})")
        return tuple(
            g for g, owner in enumerate(self.shard_of) if owner == shard
        )

    def loads(self) -> tuple[int, ...]:
        """Total assigned weight per shard."""
        totals = [0] * self.n_shards
        for group, shard in enumerate(self.shard_of):
            totals[shard] += self.weights[group]
        return tuple(totals)

    def balance_bound(self) -> float:
        """The LPT guarantee: no shard load may exceed this value."""
        if not self.weights:
            return 0.0
        return sum(self.weights) / self.n_shards + max(self.weights)


def partition_work_groups(
    weights: Sequence[int], n_shards: int
) -> ShardAssignment:
    """Distribute weighted work groups over shards (greedy LPT).

    Groups are placed heaviest-first (ties broken by group index) onto the
    currently lightest shard (ties broken by shard index), making the result
    deterministic, independent of input *order* beyond the group indices
    themselves, and bounded by :meth:`ShardAssignment.balance_bound`.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    weights = tuple(int(w) for w in weights)
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    order = sorted(range(len(weights)), key=lambda g: (-weights[g], g))
    loads = [0] * n_shards
    shard_of = [0] * len(weights)
    for group in order:
        shard = min(range(n_shards), key=lambda s: (loads[s], s))
        shard_of[group] = shard
        loads[shard] += weights[group]
    return ShardAssignment(
        n_shards=n_shards, weights=weights, shard_of=tuple(shard_of)
    )


def plan_group_weights(plan: Plan, group_size: int) -> tuple[int, ...]:
    """Per-work-group visibility counts — the shard-balance weights.

    Every group weighs at least 1 so empty groups still get assigned (and
    the LPT bound stays meaningful for degenerate plans).
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    rows = plan.items
    covered = (rows["time_end"] - rows["time_start"]) * (
        rows["channel_end"] - rows["channel_start"]
    )
    weights = []
    for start in range(0, plan.n_subgrids, group_size):
        stop = min(start + group_size, plan.n_subgrids)
        weights.append(max(1, int(covered[start:stop].sum())))
    return tuple(weights)


def add_subgrids_row_parallel(
    grid: np.ndarray,
    plan: Plan,
    subgrids_fourier: np.ndarray,
    start: int = 0,
    n_workers: int = 4,
) -> None:
    """Lock-free parallel adder: workers own disjoint row bands.

    Result is bit-identical to :func:`repro.core.adder.add_subgrids` (up to
    floating-point addition order within a band, which is unchanged).
    """
    if grid.shape != (4, plan.gridspec.grid_size, plan.gridspec.grid_size):
        raise ValueError(f"grid shape {grid.shape} does not match plan")
    partition = RowPartition.create(plan.gridspec.grid_size, n_workers)
    pol = _pol_major(subgrids_fourier)
    if n_workers == 1:
        _add_band(grid, plan, pol, start, partition.bands[0])
        return
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [
            pool.submit(_add_band, grid, plan, pol, start, band)
            for band in partition.bands
        ]
        for f in futures:
            f.result()
