"""Row-partitioned adder (paper Section V-B-d).

Subgrids overlap on the master grid, so adding them in parallel per subgrid
would require synchronisation on every pixel.  The paper instead parallelises
over grid *rows*: each worker owns a horizontal band and, for every subgrid,
adds only the rows that intersect its band — no two workers ever touch the
same grid element, so no locks are needed.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.adder import _pol_major
from repro.core.plan import Plan
from repro.parallel.batching import chunk_ranges


@dataclass(frozen=True)
class RowPartition:
    """A disjoint partition of the grid's rows into horizontal bands."""

    grid_size: int
    bands: tuple[tuple[int, int], ...]

    @classmethod
    def create(cls, grid_size: int, n_workers: int) -> "RowPartition":
        return cls(grid_size=grid_size, bands=tuple(chunk_ranges(grid_size, n_workers)))

    def covers_all_rows(self) -> bool:
        seen = np.zeros(self.grid_size, dtype=bool)
        for lo, hi in self.bands:
            if seen[lo:hi].any():
                return False
            seen[lo:hi] = True
        return bool(seen.all())


def _add_band(
    grid: np.ndarray,
    plan: Plan,
    subgrids_pol: np.ndarray,
    start: int,
    band: tuple[int, int],
) -> None:
    """Add the band-intersecting rows of every subgrid (one worker's share)."""
    lo, hi = band
    n = plan.subgrid_size
    for k in range(subgrids_pol.shape[0]):
        row = plan.items[start + k]
        cu, cv = int(row["corner_u"]), int(row["corner_v"])
        r0 = max(cv, lo)
        r1 = min(cv + n, hi)
        if r0 >= r1:
            continue
        grid[:, r0:r1, cu : cu + n] += subgrids_pol[k, :, r0 - cv : r1 - cv, :]


def add_subgrids_row_parallel(
    grid: np.ndarray,
    plan: Plan,
    subgrids_fourier: np.ndarray,
    start: int = 0,
    n_workers: int = 4,
) -> None:
    """Lock-free parallel adder: workers own disjoint row bands.

    Result is bit-identical to :func:`repro.core.adder.add_subgrids` (up to
    floating-point addition order within a band, which is unchanged).
    """
    if grid.shape != (4, plan.gridspec.grid_size, plan.gridspec.grid_size):
        raise ValueError(f"grid shape {grid.shape} does not match plan")
    partition = RowPartition.create(plan.gridspec.grid_size, n_workers)
    pol = _pol_major(subgrids_fourier)
    if n_workers == 1:
        _add_band(grid, plan, pol, start, partition.bands[0])
        return
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [
            pool.submit(_add_band, grid, plan, pol, start, band)
            for band in partition.bands
        ]
        for f in futures:
            f.result()
