"""Shared-memory arena for the process-sharded executor.

A :class:`SharedArena` owns a set of named ``multiprocessing.shared_memory``
segments, each exposed as a NumPy array.  The parent process allocates every
segment up front (inputs, per-group result slabs, status/accounting tables),
ships a picklable :class:`ArenaSpec` to each worker process, and the workers
attach read/write views onto the *same* physical pages — no visibility or
subgrid ever crosses a pipe.

Lifecycle rules (the part that goes wrong in practice):

* The parent is the sole **owner**: it creates the segments and is the only
  process that ever unlinks them.  ``SharedArena`` is a context manager whose
  ``__exit__`` closes *and unlinks* every segment, so success, failure and
  ``KeyboardInterrupt`` all tear the arena down — no stale ``/dev/shm``
  entries survive the run (``tests/parallel/test_shm_lifecycle.py`` is the
  regression gate).
* Workers **attach**; their ``close`` drops the local mapping only.  Workers
  are always *children* of the owner, so they share its ``resource_tracker``
  process and the (set-based) registration stays balanced by the parent's
  single unlink — the bpo-38119 premature-unlink hazard does not apply, and
  no per-attach unregister is needed (or wanted: it would erase the owner's
  registration).
* Segment names carry a per-arena prefix (``idgshm-<pid>-<token>``), so a
  leak is attributable to its run and the tests can scan ``/dev/shm`` for
  exactly this executor's segments.

The class-level :meth:`live_segments` registry records every segment this
process has created and not yet unlinked — the leak regression tests assert
it drains to empty.
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import ClassVar, Mapping

import numpy as np

__all__ = ["ArenaSpec", "SharedArena", "shm_dir_entries"]

#: Where the kernel materialises POSIX shared memory on Linux.
_SHM_DIR = "/dev/shm"


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable description of an arena's segments for worker attach.

    ``blocks`` maps each logical key to ``(segment_name, shape, dtype_str)``.
    """

    prefix: str
    blocks: tuple[tuple[str, str, tuple[int, ...], str], ...]


class SharedArena:
    """A named set of shared-memory-backed NumPy arrays (module docstring).

    Parent (owner) side::

        with SharedArena() as arena:
            vis = arena.allocate("vis", visibilities.shape, visibilities.dtype)
            np.copyto(vis, visibilities)
            spawn_workers(arena.spec())
            ...
        # segments closed AND unlinked here, even on exceptions

    Worker side::

        arena = SharedArena.attach(spec)
        try:
            vis = arena["vis"]
            ...
        finally:
            arena.close()  # local mapping only; the parent unlinks
    """

    #: Segment names created by this process and not yet unlinked.
    _live: ClassVar[set[str]] = set()
    _live_lock: ClassVar[threading.Lock] = threading.Lock()

    def __init__(self, prefix: str | None = None) -> None:
        if prefix is None:
            prefix = f"idgshm-{os.getpid()}-{secrets.token_hex(4)}"
        self.prefix = prefix
        self.owner = True
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._meta: dict[str, tuple[tuple[int, ...], str]] = {}
        self._arrays: dict[str, np.ndarray] = {}
        self._unlinked = False

    # -------------------------------------------------------------- owner API

    def allocate(
        self, key: str, shape: tuple[int, ...], dtype: np.dtype | type | str
    ) -> np.ndarray:
        """Create one zero-initialised segment and return its array view."""
        if not self.owner:
            raise RuntimeError("only the owning arena can allocate segments")
        if key in self._segments:
            raise ValueError(f"duplicate arena key {key!r}")
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
        name = f"{self.prefix}-{key}"
        segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        with SharedArena._live_lock:
            SharedArena._live.add(segment.name)
        self._segments[key] = segment
        self._meta[key] = (tuple(int(s) for s in shape), dt.str)
        array = np.ndarray(shape, dtype=dt, buffer=segment.buf)
        array.fill(0)
        self._arrays[key] = array
        return array

    def spec(self) -> ArenaSpec:
        """The picklable attach ticket for worker processes."""
        return ArenaSpec(
            prefix=self.prefix,
            blocks=tuple(
                (key, self._segments[key].name, shape, dtype_str)
                for key, (shape, dtype_str) in self._meta.items()
            ),
        )

    # ------------------------------------------------------------- worker API

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "SharedArena":
        """Map an existing arena (worker side; never unlinks)."""
        arena = cls.__new__(cls)
        arena.prefix = spec.prefix
        arena.owner = False
        arena._segments = {}
        arena._meta = {}
        arena._arrays = {}
        arena._unlinked = False
        for key, name, shape, dtype_str in spec.blocks:
            # SharedMemory(name=...) re-registers the segment with the
            # resource tracker.  Workers are *children* of the owning
            # process, so they share its tracker and the registration set is
            # idempotent — the parent's single unlink balances it.  (The
            # bpo-38119 premature-unlink hazard only bites attachers with a
            # tracker of their own; explicitly unregistering here would
            # instead erase the parent's registration out from under it.)
            segment = shared_memory.SharedMemory(name=name)
            arena._segments[key] = segment
            arena._meta[key] = (tuple(shape), dtype_str)
            arena._arrays[key] = np.ndarray(
                tuple(shape), dtype=np.dtype(dtype_str), buffer=segment.buf
            )
        return arena

    # ------------------------------------------------------------ shared API

    def __getitem__(self, key: str) -> np.ndarray:
        return self._arrays[key]

    def keys(self) -> tuple[str, ...]:
        return tuple(self._arrays)

    def close(self) -> None:
        """Drop this process's mappings (does not unlink)."""
        self._arrays.clear()
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:  # a caller still holds a view; mapping leaks
                pass             # until then, but the segment is still owned

    def unlink(self) -> None:
        """Remove the segments from the system (owner only; idempotent)."""
        if not self.owner:
            raise RuntimeError("only the owning arena can unlink segments")
        if self._unlinked:
            return
        self._unlinked = True
        for segment in self._segments.values():
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            with SharedArena._live_lock:
                SharedArena._live.discard(segment.name)

    def close_and_unlink(self) -> None:
        self.close()
        if self.owner:
            self.unlink()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close_and_unlink()

    # ---------------------------------------------------------- leak checks

    @classmethod
    def live_segments(cls) -> frozenset[str]:
        """Segments created by this process and not yet unlinked."""
        with cls._live_lock:
            return frozenset(cls._live)


def shm_dir_entries(prefix: str = "idgshm-") -> tuple[str, ...]:
    """``/dev/shm`` entries carrying an arena prefix (leak regression tests).

    Returns an empty tuple on hosts without a POSIX shm directory.
    """
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return ()
    return tuple(sorted(n for n in names if n.startswith(prefix)))
