"""Shape-bucketed batching of plan work items.

The greedy planner (Section V-A) emits work items whose visibility blocks
share a handful of distinct ``(n_times, n_channels)`` shapes: interior
stretches of a baseline's track cut at ``time_max`` produce full-size blocks,
and only track ends, A-term boundaries and channel splits produce the odd
sizes.  Grouping a work group's items by block shape therefore yields a few
*buckets* of many identically-shaped items each — exactly the batch-of-
subgrids execution model van der Tol, Veenboer & Offringa (2018) use on GPUs:
instead of launching one small kernel per subgrid, the batched kernels
evaluate a whole bucket with a handful of large array operations.

This module owns the bucketing pass and the gather/scatter between the
observation-shaped arrays (``(n_baselines, n_times, n_channels, ...)``) and
the stacked bucket tensors (``(G, T, 3)`` uvw, ``(G, T, C, 4)``
visibilities, ``(G, 3)`` subgrid offsets, ``(G, N, N, 2, 2)`` A-term
fields).  Gathers write into :class:`~repro.core.scratch.ScratchArena`
views so the steady state allocates nothing; the batched kernels in
:mod:`repro.core.gridder` / :mod:`repro.core.degridder` consume the stacked
tensors directly.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Final

import numpy as np

from repro.aterms.jones import identity_jones_field
from repro.constants import ACCUM_DTYPE, COMPLEX_DTYPE, SPEED_OF_LIGHT
from repro.core.degridder import degridder_bucket, degridder_bucket_fast
from repro.core.gridder import gridder_bucket, gridder_bucket_fast, subgrid_lmn
from repro.core.plan import Plan
from repro.core.scratch import ScratchArena, thread_arena

__all__ = [
    "Bucket",
    "bucket_work_items",
    "iter_bucket_chunks",
    "max_bucket_items",
    "gather_uvw",
    "gather_offsets",
    "gather_scale0",
    "gather_rel_uvw",
    "gather_visibilities",
    "gather_aterm_fields",
    "scatter_visibilities",
    "grid_work_group_batched",
    "degrid_work_group_batched",
    "uniform_channel_step",
    "DEFAULT_BATCH_BYTES",
]

#: Ceiling on the largest single scratch tensor of a batched kernel call
#: (the ``(G, N**2, T)`` complex phasor).  Buckets larger than this are
#: processed in chunks.  The channel-recurrence loop re-streams the phasor
#: and step tensors once per channel, so the chunk's phasor-family working
#: set (phasor + step + phase + base, ~3.5x this figure) must stay cache-
#: resident or every channel step pays DRAM bandwidth; 1 MiB keeps it around
#: a per-core L2 (measured fastest from 1-64 MiB on the bench config, where
#: it still batches items up to ``(G, 576, 128)`` tensors) while small work
#: items — the ones per-item dispatch overhead actually hurts — batch tens
#: to hundreds of subgrids per call.
DEFAULT_BATCH_BYTES: Final = 2**20

#: Bytes per complex128 scratch element.
_COMPLEX_ITEMSIZE: Final = 16


@dataclass(frozen=True, eq=False)
class Bucket:
    """Work items of one plan range sharing a ``(n_times, n_channels)`` shape.

    ``indices`` are absolute plan work-item indices in ascending (plan)
    order; every item in ``plan.items[start:stop]`` lands in exactly one
    bucket of :func:`bucket_work_items`.
    """

    n_times: int
    n_channels: int
    indices: np.ndarray

    @property
    def n_items(self) -> int:
        return int(self.indices.size)

    @property
    def n_visibilities(self) -> int:
        return self.n_items * self.n_times * self.n_channels


def bucket_work_items(plan: Plan, start: int, stop: int) -> tuple[Bucket, ...]:
    """Group work items ``start .. stop-1`` by visibility-block shape.

    Buckets are ordered by first occurrence in the plan and their indices
    stay in ascending plan order, so concatenating all buckets' indices and
    sorting round-trips to ``range(start, stop)``.
    """
    rows = plan.items[start:stop]
    n_times = rows["time_end"] - rows["time_start"]
    n_channels = rows["channel_end"] - rows["channel_start"]
    grouped: dict[tuple[int, int], list[int]] = {}
    for k in range(len(rows)):
        grouped.setdefault((int(n_times[k]), int(n_channels[k])), []).append(start + k)
    return tuple(
        Bucket(t, c, np.asarray(indices, dtype=np.int64))
        for (t, c), indices in grouped.items()
    )


def max_bucket_items(n_pixels2: int, n_phase: int, budget_bytes: int = DEFAULT_BATCH_BYTES) -> int:
    """Items per batched kernel call so the ``(G, n_pixels2, n_phase)``
    complex scratch tensor stays under ``budget_bytes`` (always >= 1).

    ``n_phase`` is the phasor's trailing extent: ``n_times`` for the
    channel-recurrence kernels, ``n_times * n_channels`` for the direct sum.
    """
    per_item = max(n_pixels2 * n_phase * _COMPLEX_ITEMSIZE, 1)
    return max(int(budget_bytes // per_item), 1)


def iter_bucket_chunks(bucket: Bucket, max_items: int) -> Iterator[np.ndarray]:
    """Split a bucket's indices into consecutive chunks of ``<= max_items``."""
    if max_items <= 0:
        raise ValueError("max_items must be positive")
    for lo in range(0, bucket.n_items, max_items):
        yield bucket.indices[lo : lo + max_items]


# ------------------------------------------------------------------ gathers


def gather_uvw(
    plan: Plan,
    indices: np.ndarray,
    uvw_m: np.ndarray,
    arena: ScratchArena,
    key: str = "gather.uvw",
) -> np.ndarray:
    """Stack the items' uvw blocks into a ``(G, T, 3)`` float64 arena view."""
    rows = plan.items[indices]
    n_times = int(rows["time_end"][0] - rows["time_start"][0])
    out = arena.take(key, (len(rows), n_times, 3), np.float64)
    for g in range(len(rows)):
        row = rows[g]
        out[g] = uvw_m[int(row["baseline"]), int(row["time_start"]) : int(row["time_end"])]
    return out


def gather_offsets(
    plan: Plan,
    indices: np.ndarray,
    arena: ScratchArena,
    key: str = "gather.offsets",
) -> np.ndarray:
    """``(G, 3)`` per-item ``(u_mid, v_mid, w_offset)`` in wavelengths."""
    out = arena.take(key, (int(indices.size), 3), np.float64)
    for g in range(indices.size):
        u_mid, v_mid = plan.subgrid_centre_uv(int(indices[g]))
        out[g, 0] = u_mid
        out[g, 1] = v_mid
        out[g, 2] = plan.w_offset
    return out


def gather_scale0(plan: Plan, indices: np.ndarray) -> np.ndarray:
    """``(G,)`` first-channel ``f/c`` of every item (items may start at
    different channel offsets within one shape bucket — wideband splits)."""
    first_channel = plan.items["channel_start"][indices]
    return plan.frequencies_hz[first_channel] / SPEED_OF_LIGHT


def gather_rel_uvw(
    plan: Plan,
    indices: np.ndarray,
    uvw_m: np.ndarray,
    arena: ScratchArena,
    key: str = "gather.rel_uvw",
) -> np.ndarray:
    """Stack the items' relative uvw (wavelengths) into ``(G, T*C, 3)``.

    The batched analogue of
    :func:`repro.core.gridder.relative_uvw_wavelengths`: time-major, channel
    fastest, ``(u - u_mid, v - v_mid, w - w_offset)`` per visibility.
    """
    rows = plan.items[indices]
    n_times = int(rows["time_end"][0] - rows["time_start"][0])
    n_channels = int(rows["channel_end"][0] - rows["channel_start"][0])
    out = arena.take(key, (len(rows), n_times * n_channels, 3), np.float64)
    by_channel = out.reshape(len(rows), n_times, n_channels, 3)
    for g in range(len(rows)):
        row = rows[g]
        scale = (
            plan.frequencies_hz[int(row["channel_start"]) : int(row["channel_end"])]
            / SPEED_OF_LIGHT
        )
        block = uvw_m[int(row["baseline"]), int(row["time_start"]) : int(row["time_end"])]
        np.multiply(
            block[:, np.newaxis, :], scale[np.newaxis, :, np.newaxis], out=by_channel[g]
        )
        u_mid, v_mid = plan.subgrid_centre_uv(int(indices[g]))
        by_channel[g, :, :, 0] -= u_mid
        by_channel[g, :, :, 1] -= v_mid
        by_channel[g, :, :, 2] -= plan.w_offset
    return out


def gather_visibilities(
    plan: Plan,
    indices: np.ndarray,
    visibilities: np.ndarray,
    arena: ScratchArena,
    key: str = "gather.vis",
    dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """Stack the items' visibility blocks into a ``(G, T, C, 4)`` arena view
    (``visibilities``' dtype unless ``dtype`` overrides — the batched kernels
    gather straight to complex128 so the gemm inputs match)."""
    rows = plan.items[indices]
    n_times = int(rows["time_end"][0] - rows["time_start"][0])
    n_channels = int(rows["channel_end"][0] - rows["channel_start"][0])
    out = arena.take(
        key,
        (len(rows), n_times, n_channels, 4),
        visibilities.dtype if dtype is None else dtype,
    )
    flat = visibilities.reshape(*visibilities.shape[:3], 4)
    for g in range(len(rows)):
        row = rows[g]
        block = flat[
            int(row["baseline"]),
            int(row["time_start"]) : int(row["time_end"]),
            int(row["channel_start"]) : int(row["channel_end"]),
        ]
        if block.shape != out.shape[1:]:
            # plain assignment would broadcast a short block silently
            raise ValueError(
                f"visibility block {block.shape} does not match the plan's "
                f"work-item shape {out.shape[1:]}"
            )
        out[g] = block
    return out


def gather_aterm_fields(
    plan: Plan,
    indices: np.ndarray,
    aterm_fields: dict[tuple[int, int], np.ndarray] | None,
    identity: np.ndarray | None,
    arena: ScratchArena,
    key_p: str = "gather.aterm_p",
    key_q: str = "gather.aterm_q",
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Stack per-item station Jones fields into ``(G, N, N, 2, 2)`` views.

    Returns ``(None, None)`` when ``aterm_fields`` is ``None`` or no item in
    the chunk has a field (all-identity buckets skip the sandwich entirely);
    missing fields are filled with ``identity``.
    """
    if aterm_fields is None:
        return None, None
    rows = plan.items[indices]
    any_field = False
    for g in range(len(rows)):
        row = rows[g]
        interval = int(row["aterm_interval"])
        if (int(row["station_p"]), interval) in aterm_fields or (
            int(row["station_q"]),
            interval,
        ) in aterm_fields:
            any_field = True
            break
    if not any_field:
        return None, None
    if identity is None:
        raise ValueError("identity field required when any item has an A-term")
    n = identity.shape[0]
    a_p = arena.take(key_p, (len(rows), n, n, 2, 2), identity.dtype)
    a_q = arena.take(key_q, (len(rows), n, n, 2, 2), identity.dtype)
    for g in range(len(rows)):
        row = rows[g]
        interval = int(row["aterm_interval"])
        a_p[g] = aterm_fields.get((int(row["station_p"]), interval), identity)
        a_q[g] = aterm_fields.get((int(row["station_q"]), interval), identity)
    return a_p, a_q


# ------------------------------------------------------------------ scatter


def scatter_visibilities(
    plan: Plan,
    indices: np.ndarray,
    block: np.ndarray,
    visibilities_out: np.ndarray,
) -> None:
    """Write a ``(G, T, C, ...)`` predicted block back into the items'
    ``(baseline, time, channel)`` slices of ``visibilities_out``."""
    rows = plan.items[indices]
    out = visibilities_out.reshape(*visibilities_out.shape[:3], -1)
    flat = block.reshape(*block.shape[:3], -1)
    for g in range(len(rows)):
        row = rows[g]
        target = out[
            int(row["baseline"]),
            int(row["time_start"]) : int(row["time_end"]),
            int(row["channel_start"]) : int(row["channel_end"]),
        ]
        if target.shape != flat.shape[1:]:
            # plain assignment would broadcast into a short slice silently
            raise ValueError(
                f"output block {target.shape} does not match the predicted "
                f"block shape {flat.shape[1:]}"
            )
        target[...] = flat[g]


# ------------------------------------------------------ work-group drivers


def uniform_channel_step(frequencies_hz: np.ndarray) -> float | None:
    """The uniform ``ds`` of the full ``f/c`` ladder, or ``None``.

    The batched recurrence shares one ``ds`` across a whole bucket whose
    items may start at different channels, so it needs the *global* ladder to
    be an arithmetic progression (every subband in this package is); ``None``
    sends the drivers down the batched direct-sum path instead.
    """
    scales = np.asarray(frequencies_hz, dtype=np.float64) / SPEED_OF_LIGHT
    if scales.size < 2:
        return 0.0
    steps = np.diff(scales)
    if not np.allclose(steps, steps[0], rtol=1e-9):
        return None
    return float(steps[0])


def grid_work_group_batched(
    plan: Plan,
    start: int,
    stop: int,
    uvw_m: np.ndarray,
    visibilities: np.ndarray,
    taper: np.ndarray,
    lmn: np.ndarray | None = None,
    aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
    channel_recurrence: bool = False,
    batch_bytes: int = DEFAULT_BATCH_BYTES,
    arena: ScratchArena | None = None,
) -> np.ndarray:
    """Shape-bucketed equivalent of :func:`repro.core.gridder.grid_work_group`.

    Buckets the work items by block shape, gathers each bucket into stacked
    tensors and grids it with one batched kernel call (chunked so the phasor
    scratch stays under ``batch_bytes``).  Returns the same
    ``(stop - start, N, N, 2, 2)`` complex64 subgrids as the per-item driver,
    within the differential-corpus tolerance.
    """
    n = plan.subgrid_size
    if lmn is None:
        lmn = subgrid_lmn(n, plan.gridspec.image_size)
    if arena is None:
        arena = thread_arena()
    identity = identity_jones_field(n) if aterm_fields else None
    ds = uniform_channel_step(plan.frequencies_hz) if channel_recurrence else None
    out = np.empty((stop - start, n, n, 2, 2), dtype=COMPLEX_DTYPE)
    for bucket in bucket_work_items(plan, start, stop):
        n_phase = bucket.n_times if ds is not None else bucket.n_times * bucket.n_channels
        cap = max_bucket_items(lmn.shape[0], n_phase, batch_bytes)
        for indices in iter_bucket_chunks(bucket, cap):
            vis = gather_visibilities(
                plan, indices, visibilities, arena, dtype=ACCUM_DTYPE
            )
            a_p, a_q = gather_aterm_fields(plan, indices, aterm_fields, identity, arena)
            if ds is not None:
                subgrids = gridder_bucket_fast(
                    vis,
                    gather_uvw(plan, indices, uvw_m, arena),
                    gather_scale0(plan, indices),
                    ds,
                    gather_offsets(plan, indices, arena),
                    lmn, taper, aterm_p=a_p, aterm_q=a_q, arena=arena,
                )
            else:
                subgrids = gridder_bucket(
                    vis.reshape(len(indices), -1, 4),
                    gather_rel_uvw(plan, indices, uvw_m, arena),
                    lmn, taper, aterm_p=a_p, aterm_q=a_q, arena=arena,
                )
            out[indices - start] = subgrids
    return out


def degrid_work_group_batched(
    plan: Plan,
    start: int,
    stop: int,
    subgrid_images: np.ndarray,
    uvw_m: np.ndarray,
    visibilities_out: np.ndarray,
    taper: np.ndarray,
    lmn: np.ndarray | None = None,
    aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
    channel_recurrence: bool = False,
    batch_bytes: int = DEFAULT_BATCH_BYTES,
    arena: ScratchArena | None = None,
) -> None:
    """Shape-bucketed equivalent of
    :func:`repro.core.degridder.degrid_work_group`: predictions are written
    into ``visibilities_out`` in place, one batched kernel call per bucket
    chunk."""
    n = plan.subgrid_size
    if lmn is None:
        lmn = subgrid_lmn(n, plan.gridspec.image_size)
    if arena is None:
        arena = thread_arena()
    identity = identity_jones_field(n) if aterm_fields else None
    ds = uniform_channel_step(plan.frequencies_hz) if channel_recurrence else None
    for bucket in bucket_work_items(plan, start, stop):
        n_phase = bucket.n_times if ds is not None else bucket.n_times * bucket.n_channels
        cap = max_bucket_items(lmn.shape[0], n_phase, batch_bytes)
        for indices in iter_bucket_chunks(bucket, cap):
            images = arena.take(
                "gather.subgrids", (len(indices), n, n, 2, 2), subgrid_images.dtype
            )
            np.take(subgrid_images, indices - start, axis=0, out=images)
            a_p, a_q = gather_aterm_fields(plan, indices, aterm_fields, identity, arena)
            if ds is not None:
                block = degridder_bucket_fast(
                    images,
                    gather_uvw(plan, indices, uvw_m, arena),
                    gather_scale0(plan, indices),
                    ds,
                    bucket.n_channels,
                    gather_offsets(plan, indices, arena),
                    lmn, taper, aterm_p=a_p, aterm_q=a_q, arena=arena,
                )
            else:
                block = degridder_bucket(
                    images,
                    gather_rel_uvw(plan, indices, uvw_m, arena),
                    lmn, taper, aterm_p=a_p, aterm_q=a_q, arena=arena,
                ).reshape(len(indices), bucket.n_times, bucket.n_channels, 4)
            scatter_visibilities(plan, indices, block, visibilities_out)
