"""Process-sharded IDG executor (DESIGN.md §14).

``ProcessShardedIDG`` breaks the GIL ceiling of the thread executor: the
plan's work groups are partitioned over *worker processes* (greedy LPT on
visibility weights, :func:`repro.parallel.partition.partition_work_groups`),
each worker grids its shard into slabs backed by
``multiprocessing.shared_memory`` (:mod:`repro.parallel.shm`), and the parent
reduces the results into the master grid.

Reduction modes
---------------
``exact`` (default)
    Workers only produce per-group Fourier subgrid slabs; the **parent**
    applies them to the master grid with the serial adder in ascending
    work-group order.  Floating-point addition order is therefore identical
    to the serial executor's fold, so the result is **bit-identical** to
    :meth:`repro.core.IDG.grid` — the property the cross-executor conformance
    suite pins.  Because groups retire in plan order, checkpoints are
    prefix-closed and resume is bit-exact (PR 5 semantics).
``tree``
    Each shard additionally folds its groups into a private partial grid in
    shared memory, and the parent combines the shard grids with the pinned
    pairwise reduction of :func:`repro.core.adder.tree_reduce_grids`.
    Deterministic run-to-run (the pairing is a pure function of the shard
    count) but *not* bit-identical to serial — addition is reassociated.
    Checkpoint/resume is refused in this mode.

Worker/parent protocol
----------------------
Everything crosses the process boundary through the shared arena — there is
no result queue to lose messages when a worker is SIGKILLed.  Per work group
the arena holds a status byte (pending/done/dead/failed), attempt and retry
counters, fixed-width error and stage text rows, and a compute duration; the
worker publishes the group's payload *before* flipping the status byte, and
the parent polls status bytes in ascending group order.

A worker process that dies (kill, OOM, segfault) is detected via its exit
code.  The death charges one attempt to the shard's first still-pending
group and flows into the ordinary fault-tolerance machinery via
:meth:`repro.runtime.recovery.WorkGroupRunner.fail_external` — within budget
the parent respawns a replacement worker for the shard's remaining groups
(re-seeding injected-crash counters so deterministic kill tests converge),
on exhaustion the group is quarantined as a ``stage="worker"`` dead letter
and the respawn continues without it.  In fail-fast mode (no retries, no
fault plan) a death raises :class:`~repro.parallel.executor.WorkGroupError`.

Not exactly-once: in ``tree`` mode a worker killed mid-add can leave a
partial contribution in its shard grid which a re-run then duplicates — the
same caveat the serial adder documents for genuine mid-add failures.  In
``exact`` mode re-runs are safe: workers only write their slab, and the
parent adds each group once.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.constants import COMPLEX_DTYPE
from repro.core.adder import add_grid, tree_reduce_grids
from repro.core.pipeline import IDG, IDGConfig, prepare_visibilities
from repro.core.plan import Plan
from repro.data.store import ChunkedVisibilitySource, open_store
from repro.parallel.executor import WorkGroupError
from repro.parallel.partition import (
    ShardAssignment,
    partition_work_groups,
    plan_group_weights,
)
from repro.parallel.shm import ArenaSpec, SharedArena
from repro.runtime.checkpoint import load_checkpoint, plan_signature, save_checkpoint
from repro.runtime.faults import FaultPlan, FaultSpec, InjectedCrash
from repro.runtime.recovery import (
    DeadLetter,
    FaultReport,
    Quarantined,
    RetryPolicy,
    WorkGroupRunner,
    group_visibility_count,
)
from repro.runtime.telemetry import Telemetry, monotonic

__all__ = ["ProcessConfig", "ProcessShardedIDG", "WorkerDeath"]

# Per-group status bytes in the shared arena.  The worker flips a group's
# byte away from _PENDING only after every other write for that group has
# landed.
_PENDING, _DONE, _DEAD, _FAILED = 0, 1, 2, 3

#: Fixed-width UTF-8 row sizes for error and stage text in the arena.
_ERROR_BYTES = 240
_STAGE_BYTES = 16

_REDUCTIONS = ("exact", "tree")
_START_METHODS = ("spawn", "fork", "forkserver")


class WorkerDeath(RuntimeError):
    """A worker process exited without completing its in-flight work group."""


@dataclass(frozen=True)
class ProcessConfig:
    """Tunables of the process-sharded executor.

    Attributes
    ----------
    n_procs:
        Worker processes (shards).
    reduction:
        ``"exact"`` (bit-identical to serial, module docstring) or
        ``"tree"`` (pinned pairwise shard-grid reduction).
    start_method:
        ``multiprocessing`` start method.  ``"spawn"`` is the portable
        default; ``"fork"`` starts workers orders of magnitude faster on
        Linux (no interpreter + NumPy re-import) and is what the scaling
        benchmark uses.
    poll_interval_s:
        Parent sleep between status polls while a group is pending.
    checkpoint_path / checkpoint_interval / resume_from:
        PR 5 checkpoint semantics for gridding (exact reduction only): a
        snapshot every ``checkpoint_interval`` retired groups, a final one on
        completion *and* on abort, and bit-exact resume that skips the
        checkpoint's completed groups.
    emulate_compute_s:
        Sleep this many seconds per work group inside the worker — a stand-in
        for device compute when benchmarking scaling on hosts with fewer
        cores than shards (mirrors ``RuntimeConfig.emulate_pcie_gbs``).
    """

    n_procs: int = 2
    reduction: str = "exact"
    start_method: str = "spawn"
    poll_interval_s: float = 0.002
    checkpoint_path: str | None = None
    checkpoint_interval: int = 4
    resume_from: str | None = None
    emulate_compute_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_procs <= 0:
            raise ValueError("n_procs must be positive")
        if self.reduction not in _REDUCTIONS:
            raise ValueError(
                f"reduction must be one of {_REDUCTIONS}, got {self.reduction!r}"
            )
        if self.start_method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS}, "
                f"got {self.start_method!r}"
            )
        if self.poll_interval_s < 0:
            raise ValueError("poll_interval_s must be non-negative")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.emulate_compute_s < 0:
            raise ValueError("emulate_compute_s must be non-negative")
        if self.reduction != "exact" and (
            self.checkpoint_path is not None or self.resume_from is not None
        ):
            raise ValueError(
                "checkpoint/resume requires exact reduction: tree-reduced "
                "shard grids are not a plan-order prefix sum"
            )


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker process needs, picklable for any start method.

    Bulk data (uvw, visibilities, grid) is *not* here — workers map it from
    the shared arena named by ``arena``.
    """

    shard: int
    kind: str  # "grid" | "degrid"
    plan: Plan
    idg_config: IDGConfig
    arena: ArenaSpec
    groups: tuple[int, ...]  # ascending work-group indices owned by the shard
    fault_specs: tuple[FaultSpec, ...] | None
    seeded_attempts: tuple[tuple[str, int, int], ...]
    emulate_compute_s: float
    reduction: str
    aterm_fields: dict[tuple[int, int], np.ndarray] | None
    #: Chunked-store directory to read visibilities from (out-of-core
    #: gridding).  When set there is no "vis" slab in the arena: each worker
    #: re-opens the store and maps the visibility file read-only itself —
    #: no payload pickling, no shared-memory copy, page cache shared by all.
    store_path: str | None = None


def _write_text(row: np.ndarray, text: str) -> None:
    """Store ``text`` (UTF-8, truncated) into a fixed-width uint8 row."""
    data = text.encode("utf-8", "replace")[: row.size]
    row[:] = 0
    if data:
        row[: len(data)] = np.frombuffer(data, dtype=np.uint8)


def _read_text(row: np.ndarray) -> str:
    return bytes(row.tobytes()).rstrip(b"\x00").decode("utf-8", "replace")


def _group_range(plan: Plan, group: int, group_size: int) -> tuple[int, int]:
    start = group * group_size
    return start, min(start + group_size, plan.n_subgrids)


# --------------------------------------------------------------- worker side


def _worker_main(task: _ShardTask) -> None:
    """Worker-process entry point: run one shard, publish through the arena.

    :class:`InjectedCrash` escaping a stage is converted into a *real*
    ``SIGKILL`` of this process — the deterministic stand-in the kill-matrix
    tests use for OOM-killer/segfault deaths.
    """
    arena = SharedArena.attach(task.arena)
    try:
        idg = IDG(task.plan.gridspec, task.idg_config)
        faults = None
        if task.fault_specs is not None:
            faults = FaultPlan(task.fault_specs)
            if task.seeded_attempts:
                faults.seed_attempts(
                    {(stage, group): count
                     for stage, group, count in task.seeded_attempts}
                )
        runner = None
        if task.idg_config.max_retries > 0 or faults is not None:
            runner = WorkGroupRunner(
                RetryPolicy(
                    max_retries=task.idg_config.max_retries,
                    backoff_s=task.idg_config.retry_backoff_s,
                ),
                faults=faults,
            )
        if task.kind == "grid":
            _run_grid_shard(task, idg, arena, runner)
        else:
            _run_degrid_shard(task, idg, arena, runner)
    except InjectedCrash:
        os.kill(os.getpid(), signal.SIGKILL)
    finally:
        arena.close()


def _publish_quarantine(
    arena: SharedArena, group: int, letter: DeadLetter
) -> None:
    """Copy a worker-side dead letter into the arena accounting rows."""
    _write_text(arena["errors"][group], letter.error)
    _write_text(arena["stages"][group], letter.stage)
    arena["attempts"][group] = letter.attempts
    arena["status"][group] = _DEAD


def _run_grid_shard(
    task: _ShardTask, idg: IDG, arena: SharedArena, runner: WorkGroupRunner | None
) -> None:
    plan = task.plan
    backend = idg.backend
    uvw = arena["uvw"]
    if task.store_path is not None:
        # Out-of-core shard: attach the chunked store read-only in this
        # process; the kernels stream masked blocks straight off the map.
        vis = open_store(task.store_path).source()
    else:
        vis = arena["vis"]
    fourier = arena["fourier"]
    status = arena["status"]
    retries = arena["retries"]
    durations = arena["durations"]
    fields = task.aterm_fields
    group_size = task.idg_config.work_group_size
    shard_grid = (
        arena["shardgrids"][task.shard] if task.reduction == "tree" else None
    )
    for group in task.groups:
        start, stop = _group_range(plan, group, group_size)
        t0 = time.perf_counter()
        if task.emulate_compute_s > 0:
            time.sleep(task.emulate_compute_s)

        def gridder_body(start: int = start, stop: int = stop) -> np.ndarray:
            return backend.grid_work_group(
                plan, start, stop, uvw, vis, idg.taper,
                lmn=idg.lmn, aterm_fields=fields,
                vis_batch=idg.config.vis_batch,
                channel_recurrence=idg.config.channel_recurrence,
                batched=idg.config.batched,
            )

        if runner is None:
            try:
                block = backend.subgrids_to_fourier(gridder_body())
            except Exception as exc:
                _write_text(
                    arena["errors"][group],
                    f"gridding work group {group} (plan items "
                    f"[{start}, {stop})) failed in shard {task.shard}: "
                    f"{exc!r}",
                )
                _write_text(arena["stages"][group], "gridder")
                status[group] = _FAILED
                return
            fourier[start:stop] = block
            if shard_grid is not None:
                backend.add_subgrids(shard_grid, plan, block, start=start)
            durations[group] = time.perf_counter() - t0
            status[group] = _DONE
            if task.store_path is not None:
                vis.drop_caches()  # retired group's file pages -> OS
            continue

        n_vis = group_visibility_count(plan, start, stop)
        retries_before = runner.report.n_retries
        outcome = runner.run(
            "gridder", group, gridder_body,
            start=start, stop=stop, n_visibilities=n_vis,
        )
        if not isinstance(outcome, Quarantined):
            subgrids = outcome
            outcome = runner.run(
                "subgrid_fft", group,
                lambda s=subgrids: backend.subgrids_to_fourier(s),
                start=start, stop=stop, n_visibilities=n_vis,
            )
        if not isinstance(outcome, Quarantined):
            fourier[start:stop] = outcome
            if shard_grid is not None:
                block = outcome
                outcome = runner.run(
                    "adder", group,
                    lambda b=block, st=start: backend.add_subgrids(
                        shard_grid, plan, b, start=st
                    ),
                    start=start, stop=stop, n_visibilities=n_vis,
                )
        retries[group] = runner.report.n_retries - retries_before
        durations[group] = time.perf_counter() - t0
        if isinstance(outcome, Quarantined):
            _publish_quarantine(arena, group, runner.report.dead_letters[-1])
        else:
            status[group] = _DONE
        if task.store_path is not None:
            vis.drop_caches()  # retired group's file pages -> OS


def _run_degrid_shard(
    task: _ShardTask, idg: IDG, arena: SharedArena, runner: WorkGroupRunner | None
) -> None:
    plan = task.plan
    backend = idg.backend
    uvw = arena["uvw"]
    grid = arena["grid"]
    out = arena["visout"]
    status = arena["status"]
    retries = arena["retries"]
    durations = arena["durations"]
    fields = task.aterm_fields
    group_size = task.idg_config.work_group_size
    for group in task.groups:
        start, stop = _group_range(plan, group, group_size)
        t0 = time.perf_counter()
        if task.emulate_compute_s > 0:
            time.sleep(task.emulate_compute_s)

        def degrid_body(start: int = start, stop: int = stop) -> None:
            patches = backend.split_subgrids(grid, plan, start, stop)
            backend.degrid_work_group(
                plan, start, stop, backend.subgrids_to_image(patches),
                uvw, out, idg.taper,
                lmn=idg.lmn, aterm_fields=fields,
                vis_batch=idg.config.vis_batch,
                channel_recurrence=idg.config.channel_recurrence,
                batched=idg.config.batched,
            )

        if runner is None:
            try:
                degrid_body()
            except Exception as exc:
                _write_text(
                    arena["errors"][group],
                    f"degridding work group {group} (plan items "
                    f"[{start}, {stop})) failed in shard {task.shard}: "
                    f"{exc!r}",
                )
                _write_text(arena["stages"][group], "degridder")
                status[group] = _FAILED
                return
            durations[group] = time.perf_counter() - t0
            status[group] = _DONE
            continue

        retries_before = runner.report.n_retries
        outcome = runner.run(
            "degridder", group, degrid_body, start=start, stop=stop,
            n_visibilities=group_visibility_count(plan, start, stop),
        )
        retries[group] = runner.report.n_retries - retries_before
        durations[group] = time.perf_counter() - t0
        if isinstance(outcome, Quarantined):
            _publish_quarantine(arena, group, runner.report.dead_letters[-1])
        else:
            status[group] = _DONE


# --------------------------------------------------------------- parent side


class _ShardSupervisor:
    """Parent-side shard lifecycle: spawn, status polling, death handling.

    Shared by the grid and degrid paths; holds the worker-process table, the
    per-group death counts, and the set of groups the *parent* quarantined
    because their worker died past the retry budget (``parent_dead`` — their
    dead letters are already in the runner's report when set).
    """

    def __init__(
        self,
        *,
        kind: str,
        idg: IDG,
        config: ProcessConfig,
        plan: Plan,
        assignment: ShardAssignment,
        arena: SharedArena,
        runner: WorkGroupRunner | None,
        telemetry: Telemetry,
        faults: FaultPlan | None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None,
        skip: frozenset[int] = frozenset(),
        store_path: str | None = None,
    ) -> None:
        self.kind = kind
        self.idg = idg
        self.config = config
        self.plan = plan
        self.assignment = assignment
        self.arena = arena
        self.runner = runner
        self.telemetry = telemetry
        self.fault_specs = faults.specs if faults is not None else None
        self.aterm_fields = aterm_fields
        self.skip = skip
        self.store_path = store_path
        self.status = arena["status"]
        self.procs: dict[int, mp.process.BaseProcess] = {}
        self.death_counts: dict[int, int] = {}
        self.parent_dead: set[int] = set()
        self._ctx = mp.get_context(config.start_method)

    def start(self) -> None:
        for shard in range(self.assignment.n_shards):
            pending = tuple(
                g for g in self.assignment.groups_for(shard)
                if g not in self.skip
            )
            if pending:
                self._spawn(shard, pending)

    def await_group(self, group: int) -> int:
        """Block until ``group`` leaves pending; returns its status byte.

        Detects the owning worker's death while waiting and routes it
        through the retry/quarantine/respawn machinery.
        """
        shard = self.assignment.shard_of[group]
        while (
            int(self.status[group]) == _PENDING
            and group not in self.parent_dead
        ):
            proc = self.procs.get(shard)
            if proc is None:
                raise WorkGroupError(
                    f"no worker process owns pending work group {group} "
                    f"(shard {shard})"
                )
            if proc.exitcode is not None:
                # Re-check status after observing the exit: the worker may
                # have published this group and exited cleanly in between.
                if int(self.status[group]) == _PENDING:
                    self._on_death(shard)
                continue
            time.sleep(self.config.poll_interval_s)
        return int(self.status[group])

    def shutdown(self) -> None:
        """Terminate and reap every remaining worker (abort or success)."""
        for proc in self.procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self.procs.clear()

    # ------------------------------------------------------------- internal

    def _spawn(self, shard: int, shard_groups: tuple[int, ...]) -> None:
        # A respawned worker rebuilds its FaultPlan from specs; seed the
        # crash counters with the deaths already charged so transient kill
        # schedules (times=1) clear instead of striking forever.
        seeded = tuple(
            (spec.stage, spec.group, self.death_counts[spec.group])
            for spec in (self.fault_specs or ())
            if spec.kind == "crash" and self.death_counts.get(spec.group, 0) > 0
        )
        task = _ShardTask(
            shard=shard,
            kind=self.kind,
            plan=self.plan,
            idg_config=self.idg.config,
            arena=self.arena.spec(),
            groups=shard_groups,
            fault_specs=self.fault_specs,
            seeded_attempts=seeded,
            emulate_compute_s=self.config.emulate_compute_s,
            reduction=self.config.reduction,
            aterm_fields=self.aterm_fields,
            store_path=self.store_path,
        )
        proc = self._ctx.Process(target=_worker_main, args=(task,), daemon=True)
        proc.start()
        self.procs[shard] = proc

    def _on_death(self, shard: int) -> None:
        proc = self.procs.pop(shard)
        code = proc.exitcode
        pending = [
            g for g in self.assignment.groups_for(shard)
            if g not in self.skip
            and g not in self.parent_dead
            and int(self.status[g]) == _PENDING
        ]
        if not pending:
            return  # died after finishing its shard; nothing was lost
        active = pending[0]  # workers run their groups in ascending order
        self.death_counts[active] = self.death_counts.get(active, 0) + 1
        group_size = self.idg.config.work_group_size
        start, stop = _group_range(self.plan, active, group_size)
        death = WorkerDeath(
            f"worker process for shard {shard} died with exit code {code} "
            f"while work group {active} was in flight"
        )
        if self.runner is None:
            verb = "gridding" if self.kind == "grid" else "degridding"
            raise WorkGroupError(
                f"{verb} work group {active} (plan items [{start}, {stop})) "
                f"failed in shard {shard}: {death}"
            ) from death
        quarantined = self.runner.fail_external(
            "worker", active, start=start, stop=stop,
            n_visibilities=group_visibility_count(self.plan, start, stop),
            attempts=self.death_counts[active], error=death,
        )
        if quarantined is not None:
            self.parent_dead.add(active)
            pending = pending[1:]
        if pending:
            self._spawn(shard, tuple(pending))
            self.telemetry.add_counter("worker_respawns", 1)


class ProcessShardedIDG:
    """Process-parallel gridding/degridding over shared-memory shards.

    Parameters
    ----------
    idg:
        The configured pipeline to parallelise (work-group size, retry
        policy and backend come from its ``IDGConfig``; workers rebuild the
        same pipeline from it).
    config:
        :class:`ProcessConfig`; defaults to two workers, exact reduction,
        ``spawn`` start method.
    faults:
        Optional deterministic fault-injection plan.  Worker-side stages
        (``gridder``/``subgrid_fft``/``degridder``, plus ``adder`` in tree
        mode) fire inside the worker processes; ``adder`` faults fire in the
        parent in exact mode; ``crash`` faults kill the worker process for
        real (SIGKILL).
    n_procs:
        Shorthand overriding ``config.n_procs``.

    After each run ``last_fault_report`` (``None`` when fault tolerance was
    inactive), ``last_telemetry`` (per-shard spans and counters) and
    ``last_assignment`` (the LPT shard map) describe what happened.
    """

    def __init__(
        self,
        idg: IDG,
        config: ProcessConfig | None = None,
        faults: FaultPlan | None = None,
        n_procs: int | None = None,
    ) -> None:
        if config is None:
            config = ProcessConfig()
        if n_procs is not None:
            config = replace(config, n_procs=n_procs)
        self.idg = idg
        self.config = config
        self.faults = faults
        self.last_fault_report: FaultReport | None = None
        self.last_telemetry: Telemetry | None = None
        self.last_assignment: ShardAssignment | None = None

    # ------------------------------------------------------------- internal

    def _runner(self, telemetry: Telemetry) -> WorkGroupRunner | None:
        policy = RetryPolicy(
            max_retries=self.idg.config.max_retries,
            backoff_s=self.idg.config.retry_backoff_s,
        )
        if not policy.enabled and self.faults is None:
            return None
        return WorkGroupRunner(policy, faults=self.faults, telemetry=telemetry)

    def _drain_worker_retries(
        self, runner: WorkGroupRunner | None, telemetry: Telemetry, count: int
    ) -> None:
        """Fold a worker-side retry count into the parent's report."""
        if runner is None or count <= 0:
            return
        for _ in range(count):
            runner.report.record_retry()
        telemetry.add_counter("retries", count)

    def _accounting_blocks(self, arena: SharedArena, n_groups: int) -> None:
        arena.allocate("status", (n_groups,), np.uint8)
        arena.allocate("attempts", (n_groups,), np.int32)
        arena.allocate("retries", (n_groups,), np.int32)
        arena.allocate("errors", (n_groups, _ERROR_BYTES), np.uint8)
        arena.allocate("stages", (n_groups, _STAGE_BYTES), np.uint8)
        arena.allocate("durations", (n_groups,), np.float64)

    def _record_group_spans(
        self,
        telemetry: Telemetry,
        arena: SharedArena,
        assignment: ShardAssignment,
        group: int,
        now: float,
    ) -> None:
        shard = assignment.shard_of[group]
        duration = float(arena["durations"][group])
        if duration > 0:
            # Placed just-before-merge on the parent clock; the length is
            # the worker's measured compute (including emulated sleep).
            telemetry.record_span(
                "shard_compute", group, now - duration, now,
                worker=f"shard{shard}",
            )
        telemetry.add_counter(f"shard{shard}.groups", 1)

    def _child_dead_letter(
        self,
        runner: WorkGroupRunner,
        telemetry: Telemetry,
        arena: SharedArena,
        plan: Plan,
        group: int,
        start: int,
        stop: int,
    ) -> None:
        """Reconstruct a worker-side quarantine from the arena rows."""
        runner.report.record_dead_letter(
            DeadLetter(
                stage=_read_text(arena["stages"][group]),
                group=group,
                start=start,
                stop=stop,
                attempts=int(arena["attempts"][group]),
                error=_read_text(arena["errors"][group]),
                n_visibilities=group_visibility_count(plan, start, stop),
            )
        )
        telemetry.add_counter("dead_letters", 1)

    @staticmethod
    def _finish_report(runner: WorkGroupRunner, n_groups: int) -> None:
        runner.report.n_groups = n_groups
        runner.report.n_groups_completed = (
            n_groups - len(runner.report.excluded_items())
        )

    # ------------------------------------------------------------- gridding

    def grid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None = None,
        flags: np.ndarray | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Process-parallel equivalent of :meth:`repro.core.IDG.grid`.

        In exact reduction mode the result is bit-identical to the serial
        executor (module docstring); quarantined work groups are excluded
        and reported on ``last_fault_report`` exactly like the other
        executors.  A store-backed
        :class:`~repro.data.store.ChunkedVisibilitySource` is passed to the
        workers *by path*: no "vis" slab is allocated, each worker maps the
        store's visibility file read-only itself (sharing the page cache),
        so out-of-core datasets never cross the process boundary.
        """
        idg = self.idg
        cfg = self.config
        backend = idg.backend
        idg._check_shapes(plan, uvw_m, visibilities)
        visibilities = prepare_visibilities(visibilities, flags)
        store_path = None
        if isinstance(visibilities, ChunkedVisibilitySource):
            store_path = visibilities.store_path
            if store_path is None:
                # A source without a backing store (or carrying extra flags
                # the store does not record) cannot be re-opened inside the
                # workers; fall back to the shared-memory slab.
                visibilities = visibilities.materialize()
        fields = (
            aterm_fields
            if aterm_fields is not None
            else idg.aterm_fields(plan, aterms)
        )
        group_size = idg.config.work_group_size
        groups = list(plan.work_groups(group_size))
        n_groups = len(groups)
        assignment = partition_work_groups(
            plan_group_weights(plan, group_size), cfg.n_procs
        )
        self.last_assignment = assignment
        telemetry = Telemetry()
        self.last_telemetry = telemetry
        runner = self._runner(telemetry)
        self.last_fault_report = runner.report if runner is not None else None

        signature = None
        completed: set[int] = set()
        master = idg.gridspec.allocate_grid(dtype=COMPLEX_DTYPE)
        if cfg.checkpoint_path is not None or cfg.resume_from is not None:
            signature = plan_signature(plan, group_size)
        if cfg.resume_from is not None:
            ckpt = load_checkpoint(cfg.resume_from, signature=signature)
            completed = set(ckpt.completed_set)
            np.copyto(master, ckpt.grid)
        n_retired = len(completed)
        retired_since_save = 0

        def save_snapshot() -> None:
            save_checkpoint(
                cfg.checkpoint_path, master, completed, signature,
                n_retired=n_retired,
            )
            if runner is not None:
                runner.report.n_checkpoints += 1

        with SharedArena() as arena:
            np.copyto(arena.allocate("uvw", uvw_m.shape, uvw_m.dtype), uvw_m)
            if store_path is None:
                np.copyto(
                    arena.allocate(
                        "vis", visibilities.shape, visibilities.dtype
                    ),
                    visibilities,
                )
            n = plan.subgrid_size
            fourier = arena.allocate(
                "fourier", (plan.n_subgrids, n, n, 2, 2), COMPLEX_DTYPE
            )
            self._accounting_blocks(arena, n_groups)
            if cfg.reduction == "tree":
                g = idg.gridspec.grid_size
                shardgrids = arena.allocate(
                    "shardgrids", (cfg.n_procs, 4, g, g), COMPLEX_DTYPE
                )
            supervisor = _ShardSupervisor(
                kind="grid", idg=idg, config=cfg, plan=plan,
                assignment=assignment, arena=arena, runner=runner,
                telemetry=telemetry, faults=self.faults, aterm_fields=fields,
                skip=frozenset(completed), store_path=store_path,
            )
            try:
                supervisor.start()
                for group, (start, stop) in enumerate(groups):
                    if group in completed:
                        continue  # resumed from checkpoint
                    code = supervisor.await_group(group)
                    if group in supervisor.parent_dead:
                        n_retired += 1
                        retired_since_save += 1
                    elif code == _FAILED:
                        raise WorkGroupError(
                            _read_text(arena["errors"][group])
                        )
                    elif code == _DEAD:
                        self._drain_worker_retries(
                            runner, telemetry, int(arena["retries"][group])
                        )
                        self._child_dead_letter(
                            runner, telemetry, arena, plan, group, start, stop
                        )
                        n_retired += 1
                        retired_since_save += 1
                    else:  # _DONE
                        self._drain_worker_retries(
                            runner, telemetry, int(arena["retries"][group])
                        )
                        n_vis = group_visibility_count(plan, start, stop)
                        t0 = monotonic()
                        merged = True
                        if cfg.reduction == "exact":
                            block = fourier[start:stop]
                            if runner is None:
                                backend.add_subgrids(
                                    master, plan, block, start=start
                                )
                            else:
                                result = runner.run(
                                    "adder", group,
                                    lambda b=block, st=start:
                                        backend.add_subgrids(
                                            master, plan, b, start=st
                                        ),
                                    start=start, stop=stop,
                                    n_visibilities=n_vis,
                                )
                                merged = not isinstance(result, Quarantined)
                            telemetry.record_span(
                                "adder", group, t0, monotonic(),
                                worker="parent",
                            )
                        self._record_group_spans(
                            telemetry, arena, assignment, group, t0
                        )
                        if merged:
                            telemetry.add_counter("visibilities", n_vis)
                            completed.add(group)
                        n_retired += 1
                        retired_since_save += 1
                    if (
                        cfg.checkpoint_path is not None
                        and retired_since_save >= cfg.checkpoint_interval
                    ):
                        save_snapshot()
                        retired_since_save = 0
                if cfg.reduction == "tree":
                    partials = [
                        shardgrids[shard].copy()
                        for shard in range(cfg.n_procs)
                    ]
                    add_grid(master, tree_reduce_grids(partials))
            finally:
                supervisor.shutdown()
                if cfg.checkpoint_path is not None:
                    # Final snapshot on success *and* on abort, so a killed
                    # run resumes bit-exactly from the last retired prefix.
                    save_snapshot()
        if runner is not None:
            self._finish_report(runner, n_groups)
        return master

    # ----------------------------------------------------------- degridding

    def degrid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        grid: np.ndarray,
        aterms: ATermGenerator | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Process-parallel equivalent of :meth:`repro.core.IDG.degrid`.

        Work groups cover disjoint visibility blocks, so shards write the
        shared output slab without synchronisation; a quarantined group
        leaves its block zero (the shared convention).  ``out``
        (zero-initialised, e.g. a writable dataset-store map) receives the
        prediction instead of a fresh copy — note the shared-memory
        ``visout`` slab itself remains O(dataset); streaming degrid output
        without the slab is the StreamingIDG path's job.
        """
        idg = self.idg
        cfg = self.config
        fields = (
            aterm_fields
            if aterm_fields is not None
            else idg.aterm_fields(plan, aterms)
        )
        group_size = idg.config.work_group_size
        groups = list(plan.work_groups(group_size))
        n_groups = len(groups)
        assignment = partition_work_groups(
            plan_group_weights(plan, group_size), cfg.n_procs
        )
        self.last_assignment = assignment
        telemetry = Telemetry()
        self.last_telemetry = telemetry
        runner = self._runner(telemetry)
        self.last_fault_report = runner.report if runner is not None else None
        n_bl, n_times, _ = uvw_m.shape

        with SharedArena() as arena:
            np.copyto(arena.allocate("uvw", uvw_m.shape, uvw_m.dtype), uvw_m)
            np.copyto(arena.allocate("grid", grid.shape, grid.dtype), grid)
            visout = arena.allocate(
                "visout", (n_bl, n_times, plan.n_channels, 2, 2), COMPLEX_DTYPE
            )
            self._accounting_blocks(arena, n_groups)
            supervisor = _ShardSupervisor(
                kind="degrid", idg=idg, config=cfg, plan=plan,
                assignment=assignment, arena=arena, runner=runner,
                telemetry=telemetry, faults=self.faults, aterm_fields=fields,
            )
            try:
                supervisor.start()
                for group, (start, stop) in enumerate(groups):
                    code = supervisor.await_group(group)
                    if group in supervisor.parent_dead:
                        continue
                    if code == _FAILED:
                        raise WorkGroupError(_read_text(arena["errors"][group]))
                    self._drain_worker_retries(
                        runner, telemetry, int(arena["retries"][group])
                    )
                    if code == _DEAD:
                        self._child_dead_letter(
                            runner, telemetry, arena, plan, group, start, stop
                        )
                        continue
                    self._record_group_spans(
                        telemetry, arena, assignment, group, monotonic()
                    )
                    telemetry.add_counter(
                        "visibilities", group_visibility_count(plan, start, stop)
                    )
                if out is None:
                    result = visout.copy()
                else:
                    expected = (n_bl, n_times, plan.n_channels, 2, 2)
                    if out.shape != expected:
                        raise ValueError(
                            f"out shape {out.shape} != {expected}"
                        )
                    np.copyto(out, visout)
                    result = out
            finally:
                supervisor.shutdown()
        if runner is not None:
            self._finish_report(runner, n_groups)
        return result
