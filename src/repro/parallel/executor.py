"""Thread-parallel IDG pipeline (paper Section V-B).

``ParallelIDG`` wraps a :class:`repro.core.IDG` and distributes work groups
over a flat thread pool: every worker grids/degrids its own work groups (the
BLAS matrix products and FFTs inside release the GIL), and the results are
merged with the lock-free row-partitioned adder as each worker completes.
Degridding needs no merging at all — work items write disjoint visibility
blocks — mirroring the paper's observation that the splitter/degridder side
is trivially parallel.

.. note::
   This is the simple data-parallel executor kept for the Section V-B CPU
   comparison.  The pipelined successor — overlapping gridder, FFT and adder
   stages through bounded buffers, with telemetry — is
   :class:`repro.runtime.StreamingIDG`; prefer it for new code.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, as_completed

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.constants import COMPLEX_DTYPE
from repro.core.pipeline import IDG
from repro.core.plan import Plan
from repro.parallel.batching import interleaved_ranges


class ParallelIDG:
    """Work-group-parallel gridding/degridding.

    Parameters
    ----------
    idg:
        The configured single-threaded pipeline to parallelise.
    n_workers:
        Worker threads; defaults to every logical core (the paper uses all
        of them).
    """

    def __init__(self, idg: IDG, n_workers: int | None = None):
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.idg = idg
        self.n_workers = n_workers

    def grid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None = None,
    ) -> np.ndarray:
        """Parallel equivalent of :meth:`repro.core.IDG.grid`.

        Subgrid batches are merged onto the master grid as each worker
        completes (``as_completed``), overlapping adder work with the
        remaining gridding instead of waiting for the whole pool.
        """
        idg = self.idg
        backend = idg.backend
        fields = idg.aterm_fields(plan, aterms)
        group_size = idg.config.work_group_size

        def worker(worker_id: int) -> list[tuple[int, np.ndarray]]:
            out = []
            for start, stop in interleaved_ranges(
                plan.n_subgrids, group_size, worker_id, self.n_workers
            ):
                subgrids = backend.grid_work_group(
                    plan, start, stop, uvw_m, visibilities, idg.taper,
                    lmn=idg.lmn, aterm_fields=fields,
                    vis_batch=idg.config.vis_batch,
                    channel_recurrence=idg.config.channel_recurrence,
                    batched=idg.config.batched,
                )
                out.append((start, backend.subgrids_to_fourier(subgrids)))
            return out

        grid = idg.gridspec.allocate_grid(dtype=COMPLEX_DTYPE)
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [pool.submit(worker, w) for w in range(self.n_workers)]
            for future in as_completed(futures):
                # Merge with the lock-free row-parallel adder (Section
                # V-B-d) while the remaining workers keep gridding; a worker
                # exception surfaces here at the earliest completion.
                for start, fourier in future.result():
                    backend.add_subgrids(
                        grid, plan, fourier, start=start, n_workers=self.n_workers
                    )
        return grid

    def degrid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        grid: np.ndarray,
        aterms: ATermGenerator | None = None,
    ) -> np.ndarray:
        """Parallel equivalent of :meth:`repro.core.IDG.degrid`.

        Work items cover disjoint (baseline, time, channel) blocks, so all
        workers write into the shared output without synchronisation.
        """
        idg = self.idg
        backend = idg.backend
        fields = idg.aterm_fields(plan, aterms)
        group_size = idg.config.work_group_size
        n_bl, n_times, _ = uvw_m.shape
        out = np.zeros((n_bl, n_times, plan.n_channels, 2, 2), dtype=COMPLEX_DTYPE)

        def worker(worker_id: int) -> None:
            for start, stop in interleaved_ranges(
                plan.n_subgrids, group_size, worker_id, self.n_workers
            ):
                patches = backend.split_subgrids(grid, plan, start, stop)
                backend.degrid_work_group(
                    plan, start, stop, backend.subgrids_to_image(patches),
                    uvw_m, out,
                    idg.taper, lmn=idg.lmn, aterm_fields=fields,
                    vis_batch=idg.config.vis_batch,
                    channel_recurrence=idg.config.channel_recurrence,
                    batched=idg.config.batched,
                )

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [pool.submit(worker, w) for w in range(self.n_workers)]
            for future in as_completed(futures):
                future.result()  # surface worker exceptions promptly
        return out
