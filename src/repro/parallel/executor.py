"""Thread-parallel IDG pipeline (paper Section V-B).

``ParallelIDG`` wraps a :class:`repro.core.IDG` and distributes *work groups*
over a thread pool: one future per work group computes that group's
Fourier-domain subgrids (the BLAS matrix products and FFTs inside release the
GIL), and the main thread merges results onto the master grid **in ascending
work-group order** — an in-order retirement loop over the futures, so the
pool acts as its own reorder buffer.  Because the adder therefore accumulates
groups in exactly the serial executor's plan order (and the row-partitioned
adder keeps each pixel's within-group addition order unchanged), the parallel
result is bit-identical to :meth:`repro.core.IDG.grid` — the property the
cross-executor conformance suite pins.  Degridding needs no merging at all —
work items write disjoint visibility blocks — mirroring the paper's
observation that the splitter/degridder side is trivially parallel.

Failure semantics: a worker exception is wrapped in :class:`WorkGroupError`
naming the plan range that caused it, an abort flag stops not-yet-started
groups from touching the backend (so a doomed run does not grind through
every remaining batch first), and the causal error is re-raised.
``KeyboardInterrupt`` during the merge loop cancels the pool the same way.
With fault tolerance active (``IDGConfig.max_retries > 0`` or an injected
:class:`~repro.runtime.faults.FaultPlan`) failures are instead retried and,
on budget exhaustion, quarantined per work group — see
:mod:`repro.runtime.recovery` and DESIGN.md §11.

.. note::
   This is the simple data-parallel executor kept for the Section V-B CPU
   comparison.  The pipelined successor — overlapping gridder, FFT and adder
   stages through bounded buffers, with telemetry — is
   :class:`repro.runtime.StreamingIDG`; the multi-process successor is
   :class:`repro.parallel.process.ProcessShardedIDG`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.constants import COMPLEX_DTYPE
from repro.core.pipeline import IDG, prepare_visibilities
from repro.data.store import ChunkedVisibilitySource
from repro.core.plan import Plan
from repro.runtime.faults import FaultPlan
from repro.runtime.recovery import (
    FaultReport,
    Quarantined,
    RetryPolicy,
    WorkGroupRunner,
    group_visibility_count,
)


class WorkGroupError(RuntimeError):
    """A worker failure annotated with the plan range that caused it.

    The original exception is chained as ``__cause__``.
    """


class ParallelIDG:
    """Work-group-parallel gridding/degridding.

    Parameters
    ----------
    idg:
        The configured single-threaded pipeline to parallelise (also
        supplies the retry policy via ``IDGConfig.max_retries`` /
        ``retry_backoff_s``).
    n_workers:
        Worker threads; defaults to every logical core (the paper uses all
        of them).
    faults:
        Optional deterministic fault-injection plan (tests, benchmarks).

    The fault report of the most recent tolerant run is kept on
    ``last_fault_report`` (``None`` when the layer was inactive).
    """

    def __init__(
        self,
        idg: IDG,
        n_workers: int | None = None,
        faults: FaultPlan | None = None,
    ):
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.idg = idg
        self.n_workers = n_workers
        self.faults = faults
        self.last_fault_report: FaultReport | None = None

    # ------------------------------------------------------------- internal

    def _runner(self) -> WorkGroupRunner | None:
        policy = RetryPolicy(
            max_retries=self.idg.config.max_retries,
            backoff_s=self.idg.config.retry_backoff_s,
        )
        if not policy.enabled and self.faults is None:
            return None
        return WorkGroupRunner(policy, faults=self.faults)

    def _n_groups(self, plan: Plan) -> int:
        group_size = self.idg.config.work_group_size
        return -(-plan.n_subgrids // group_size)

    @staticmethod
    def _finish_report(runner: WorkGroupRunner, n_groups: int) -> None:
        runner.report.n_groups = n_groups
        runner.report.n_groups_completed = (
            n_groups - len(runner.report.excluded_items())
        )

    # ------------------------------------------------------------- gridding

    def grid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None = None,
        flags: np.ndarray | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Parallel equivalent of :meth:`repro.core.IDG.grid`.

        One future per work group; the merge loop retires futures in
        ascending group order, so the master grid accumulates contributions
        in exactly the serial plan order (bit-identical result) while the
        pool keeps gridding ahead.  ``flags`` and ``aterm_fields`` behave as
        on the serial executor.
        """
        idg = self.idg
        backend = idg.backend
        idg._check_shapes(plan, uvw_m, visibilities)
        visibilities = prepare_visibilities(visibilities, flags)
        source = (
            visibilities
            if isinstance(visibilities, ChunkedVisibilitySource) else None
        )
        fields = (
            aterm_fields
            if aterm_fields is not None
            else idg.aterm_fields(plan, aterms)
        )
        groups = list(plan.work_groups(idg.config.work_group_size))
        runner = self._runner()
        self.last_fault_report = runner.report if runner is not None else None
        abort = threading.Event()

        def compute(group: int, start: int, stop: int):
            """Gridder + subgrid FFT for one work group (worker thread)."""
            if abort.is_set():
                return None  # run is doomed; don't grind through the rest

            def grid_body() -> np.ndarray:
                return backend.grid_work_group(
                    plan, start, stop, uvw_m, visibilities, idg.taper,
                    lmn=idg.lmn, aterm_fields=fields,
                    vis_batch=idg.config.vis_batch,
                    channel_recurrence=idg.config.channel_recurrence,
                    batched=idg.config.batched,
                )

            if runner is None:
                try:
                    return backend.subgrids_to_fourier(grid_body())
                except Exception as exc:
                    abort.set()
                    raise WorkGroupError(
                        f"gridding work group {group} (plan items "
                        f"[{start}, {stop})) failed: {exc!r}"
                    ) from exc
            n_vis = group_visibility_count(plan, start, stop)
            subgrids = runner.run(
                "gridder", group, grid_body,
                start=start, stop=stop, n_visibilities=n_vis,
            )
            if isinstance(subgrids, Quarantined):
                return subgrids
            return runner.run(
                "subgrid_fft", group,
                lambda: backend.subgrids_to_fourier(subgrids),
                start=start, stop=stop, n_visibilities=n_vis,
            )

        grid = idg.gridspec.allocate_grid(dtype=COMPLEX_DTYPE)
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [
                pool.submit(compute, group, start, stop)
                for group, (start, stop) in enumerate(groups)
            ]
            try:
                # In-order retirement: wait for each group in plan order and
                # add it while later groups keep computing in the pool.  The
                # row-parallel adder preserves each pixel's within-group
                # addition order, so the overall fold matches serial bitwise.
                for group, (start, stop) in enumerate(groups):
                    fourier = futures[group].result()
                    if source is not None:
                        # Retired groups' mmap pages are dead weight; evict
                        # them so resident memory tracks groups in flight.
                        source.drop_caches()
                    if fourier is None or isinstance(fourier, Quarantined):
                        continue
                    if runner is None:
                        backend.add_subgrids(
                            grid, plan, fourier, start=start,
                            n_workers=self.n_workers,
                        )
                        continue
                    runner.run(
                        "adder", group,
                        lambda f=fourier, st=start: backend.add_subgrids(
                            grid, plan, f, start=st, n_workers=self.n_workers,
                        ),
                        start=start, stop=stop,
                        n_visibilities=group_visibility_count(plan, start, stop),
                    )
            except BaseException:  # noqa: B036 — incl. KeyboardInterrupt
                # Cancel queued futures and flag in-flight workers to stop
                # before touching the backend, then re-raise the causal
                # error.
                abort.set()
                for future in futures:
                    future.cancel()
                raise
        if runner is not None:
            self._finish_report(runner, len(groups))
        return grid

    # ----------------------------------------------------------- degridding

    def degrid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        grid: np.ndarray,
        aterms: ATermGenerator | None = None,
        aterm_fields: dict[tuple[int, int], np.ndarray] | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Parallel equivalent of :meth:`repro.core.IDG.degrid`.

        Work items cover disjoint (baseline, time, channel) blocks, so all
        workers write into the shared output without synchronisation (each
        visibility is written exactly once — no accumulation, hence
        bit-identical to serial regardless of completion order).  A
        quarantined work group (tolerant mode) leaves its block zero.
        ``out`` (zero-initialised, e.g. a writable dataset-store map)
        receives the prediction in place as on the serial executor.
        """
        idg = self.idg
        backend = idg.backend
        fields = (
            aterm_fields
            if aterm_fields is not None
            else idg.aterm_fields(plan, aterms)
        )
        groups = list(plan.work_groups(idg.config.work_group_size))
        n_bl, n_times, _ = uvw_m.shape
        expected = (n_bl, n_times, plan.n_channels, 2, 2)
        if out is None:
            out = np.zeros(expected, dtype=COMPLEX_DTYPE)
        elif out.shape != expected:
            raise ValueError(f"out shape {out.shape} != {expected}")
        runner = self._runner()
        self.last_fault_report = runner.report if runner is not None else None
        abort = threading.Event()

        def compute(group: int, start: int, stop: int) -> None:
            if abort.is_set():
                return

            def degrid_body() -> None:
                patches = backend.split_subgrids(grid, plan, start, stop)
                backend.degrid_work_group(
                    plan, start, stop, backend.subgrids_to_image(patches),
                    uvw_m, out,
                    idg.taper, lmn=idg.lmn, aterm_fields=fields,
                    vis_batch=idg.config.vis_batch,
                    channel_recurrence=idg.config.channel_recurrence,
                    batched=idg.config.batched,
                )

            if runner is None:
                try:
                    degrid_body()
                except Exception as exc:
                    abort.set()
                    raise WorkGroupError(
                        f"degridding work group {group} (plan items "
                        f"[{start}, {stop})) failed: {exc!r}"
                    ) from exc
                return
            runner.run(
                "degridder", group, degrid_body, start=start, stop=stop,
                n_visibilities=group_visibility_count(plan, start, stop),
            )

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [
                pool.submit(compute, group, start, stop)
                for group, (start, stop) in enumerate(groups)
            ]
            try:
                for future in futures:
                    future.result()  # surface worker exceptions
            except BaseException:  # noqa: B036 — incl. KeyboardInterrupt
                abort.set()
                for future in futures:
                    future.cancel()
                raise
        if runner is not None:
            self._finish_report(runner, len(groups))
        return out
