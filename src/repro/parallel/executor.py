"""Thread-parallel IDG pipeline (paper Section V-B).

``ParallelIDG`` wraps a :class:`repro.core.IDG` and distributes work groups
over a flat thread pool: every worker grids/degrids its own work groups (the
BLAS matrix products and FFTs inside release the GIL), and the results are
merged with the lock-free row-partitioned adder as each worker completes.
Degridding needs no merging at all — work items write disjoint visibility
blocks — mirroring the paper's observation that the splitter/degridder side
is trivially parallel.

Failure semantics: a worker exception is wrapped in :class:`WorkGroupError`
naming the plan range that caused it, the pool's remaining work is cancelled
(an abort flag stops in-flight workers at the next work-group boundary, so a
doomed run does not grind through every remaining batch first), and the
causal error is re-raised.  ``KeyboardInterrupt`` during the merge loop
cancels the pool the same way.  With fault tolerance active
(``IDGConfig.max_retries > 0`` or an injected
:class:`~repro.runtime.faults.FaultPlan`) failures are instead retried and,
on budget exhaustion, quarantined per work group — see
:mod:`repro.runtime.recovery` and DESIGN.md §11.

.. note::
   This is the simple data-parallel executor kept for the Section V-B CPU
   comparison.  The pipelined successor — overlapping gridder, FFT and adder
   stages through bounded buffers, with telemetry — is
   :class:`repro.runtime.StreamingIDG`; prefer it for new code.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor, as_completed

import numpy as np

from repro.aterms.generators import ATermGenerator
from repro.constants import COMPLEX_DTYPE
from repro.core.pipeline import IDG
from repro.core.plan import Plan
from repro.parallel.batching import interleaved_ranges
from repro.runtime.faults import FaultPlan
from repro.runtime.recovery import (
    FaultReport,
    Quarantined,
    RetryPolicy,
    WorkGroupRunner,
    group_visibility_count,
)


class WorkGroupError(RuntimeError):
    """A worker failure annotated with the plan range that caused it.

    The original exception is chained as ``__cause__``.
    """


class ParallelIDG:
    """Work-group-parallel gridding/degridding.

    Parameters
    ----------
    idg:
        The configured single-threaded pipeline to parallelise (also
        supplies the retry policy via ``IDGConfig.max_retries`` /
        ``retry_backoff_s``).
    n_workers:
        Worker threads; defaults to every logical core (the paper uses all
        of them).
    faults:
        Optional deterministic fault-injection plan (tests, benchmarks).

    The fault report of the most recent tolerant run is kept on
    ``last_fault_report`` (``None`` when the layer was inactive).
    """

    def __init__(
        self,
        idg: IDG,
        n_workers: int | None = None,
        faults: FaultPlan | None = None,
    ):
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.idg = idg
        self.n_workers = n_workers
        self.faults = faults
        self.last_fault_report: FaultReport | None = None

    # ------------------------------------------------------------- internal

    def _runner(self) -> WorkGroupRunner | None:
        policy = RetryPolicy(
            max_retries=self.idg.config.max_retries,
            backoff_s=self.idg.config.retry_backoff_s,
        )
        if not policy.enabled and self.faults is None:
            return None
        return WorkGroupRunner(policy, faults=self.faults)

    def _n_groups(self, plan: Plan) -> int:
        group_size = self.idg.config.work_group_size
        return -(-plan.n_subgrids // group_size)

    @staticmethod
    def _finish_report(runner: WorkGroupRunner, n_groups: int) -> None:
        runner.report.n_groups = n_groups
        runner.report.n_groups_completed = (
            n_groups - len(runner.report.excluded_items())
        )

    # ------------------------------------------------------------- gridding

    def grid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        visibilities: np.ndarray,
        aterms: ATermGenerator | None = None,
    ) -> np.ndarray:
        """Parallel equivalent of :meth:`repro.core.IDG.grid`.

        Subgrid batches are merged onto the master grid as each worker
        completes (``as_completed``), overlapping adder work with the
        remaining gridding instead of waiting for the whole pool.
        """
        idg = self.idg
        backend = idg.backend
        fields = idg.aterm_fields(plan, aterms)
        group_size = idg.config.work_group_size
        runner = self._runner()
        self.last_fault_report = runner.report if runner is not None else None
        abort = threading.Event()

        def worker(worker_id: int) -> list[tuple[int, int, np.ndarray]]:
            out = []
            for start, stop in interleaved_ranges(
                plan.n_subgrids, group_size, worker_id, self.n_workers
            ):
                if abort.is_set():
                    break  # run is doomed; don't grind through the rest
                group = start // group_size

                def grid_body(start: int = start, stop: int = stop) -> np.ndarray:
                    return backend.grid_work_group(
                        plan, start, stop, uvw_m, visibilities, idg.taper,
                        lmn=idg.lmn, aterm_fields=fields,
                        vis_batch=idg.config.vis_batch,
                        channel_recurrence=idg.config.channel_recurrence,
                        batched=idg.config.batched,
                    )

                if runner is None:
                    try:
                        subgrids = grid_body()
                        fourier = backend.subgrids_to_fourier(subgrids)
                    except Exception as exc:
                        raise WorkGroupError(
                            f"gridding work group {group} (plan items "
                            f"[{start}, {stop})) failed in worker "
                            f"{worker_id}: {exc!r}"
                        ) from exc
                    out.append((group, start, fourier))
                    continue
                n_vis = group_visibility_count(plan, start, stop)
                subgrids = runner.run(
                    "gridder", group, grid_body,
                    start=start, stop=stop, n_visibilities=n_vis,
                )
                if isinstance(subgrids, Quarantined):
                    continue
                fourier = runner.run(
                    "subgrid_fft", group,
                    lambda subgrids=subgrids: backend.subgrids_to_fourier(subgrids),
                    start=start, stop=stop, n_visibilities=n_vis,
                )
                if isinstance(fourier, Quarantined):
                    continue
                out.append((group, start, fourier))
            return out

        grid = idg.gridspec.allocate_grid(dtype=COMPLEX_DTYPE)
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [pool.submit(worker, w) for w in range(self.n_workers)]
            try:
                for future in as_completed(futures):
                    # Merge with the lock-free row-parallel adder (Section
                    # V-B-d) while the remaining workers keep gridding; a
                    # worker exception surfaces here at the earliest
                    # completion.
                    for group, start, fourier in future.result():
                        if runner is None:
                            backend.add_subgrids(
                                grid, plan, fourier, start=start,
                                n_workers=self.n_workers,
                            )
                            continue
                        stop = start + len(fourier)
                        runner.run(
                            "adder", group,
                            lambda start=start, fourier=fourier:
                                backend.add_subgrids(
                                    grid, plan, fourier, start=start,
                                    n_workers=self.n_workers,
                                ),
                            start=start, stop=stop,
                            n_visibilities=group_visibility_count(
                                plan, start, stop
                            ),
                        )
            except BaseException:  # noqa: B036 — incl. KeyboardInterrupt
                # Cancel queued futures and flag in-flight workers to stop
                # at their next work-group boundary before re-raising the
                # causal error.
                abort.set()
                for future in futures:
                    future.cancel()
                raise
        if runner is not None:
            self._finish_report(runner, self._n_groups(plan))
        return grid

    # ----------------------------------------------------------- degridding

    def degrid(
        self,
        plan: Plan,
        uvw_m: np.ndarray,
        grid: np.ndarray,
        aterms: ATermGenerator | None = None,
    ) -> np.ndarray:
        """Parallel equivalent of :meth:`repro.core.IDG.degrid`.

        Work items cover disjoint (baseline, time, channel) blocks, so all
        workers write into the shared output without synchronisation.  A
        quarantined work group (tolerant mode) leaves its block zero.
        """
        idg = self.idg
        backend = idg.backend
        fields = idg.aterm_fields(plan, aterms)
        group_size = idg.config.work_group_size
        n_bl, n_times, _ = uvw_m.shape
        out = np.zeros((n_bl, n_times, plan.n_channels, 2, 2), dtype=COMPLEX_DTYPE)
        runner = self._runner()
        self.last_fault_report = runner.report if runner is not None else None
        abort = threading.Event()

        def worker(worker_id: int) -> None:
            for start, stop in interleaved_ranges(
                plan.n_subgrids, group_size, worker_id, self.n_workers
            ):
                if abort.is_set():
                    break
                group = start // group_size

                def degrid_body(start: int = start, stop: int = stop) -> None:
                    patches = backend.split_subgrids(grid, plan, start, stop)
                    backend.degrid_work_group(
                        plan, start, stop, backend.subgrids_to_image(patches),
                        uvw_m, out,
                        idg.taper, lmn=idg.lmn, aterm_fields=fields,
                        vis_batch=idg.config.vis_batch,
                        channel_recurrence=idg.config.channel_recurrence,
                        batched=idg.config.batched,
                    )

                if runner is None:
                    try:
                        degrid_body()
                    except Exception as exc:
                        raise WorkGroupError(
                            f"degridding work group {group} (plan items "
                            f"[{start}, {stop})) failed in worker "
                            f"{worker_id}: {exc!r}"
                        ) from exc
                    continue
                runner.run(
                    "degridder", group, degrid_body, start=start, stop=stop,
                    n_visibilities=group_visibility_count(plan, start, stop),
                )

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            futures = [pool.submit(worker, w) for w in range(self.n_workers)]
            try:
                for future in as_completed(futures):
                    future.result()  # surface worker exceptions promptly
            except BaseException:  # noqa: B036 — incl. KeyboardInterrupt
                abort.set()
                for future in futures:
                    future.cancel()
                raise
        if runner is not None:
            self._finish_report(runner, self._n_groups(plan))
        return out
