"""Index-range helpers for splitting work across workers."""

from __future__ import annotations

from collections.abc import Iterator


def chunk_ranges(total: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into up to ``n_chunks`` contiguous ranges whose
    sizes differ by at most one.  Empty ranges are omitted.
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    if n_chunks <= 0:
        raise ValueError("n_chunks must be positive")
    base, extra = divmod(total, n_chunks)
    out = []
    start = 0
    for k in range(n_chunks):
        size = base + (1 if k < extra else 0)
        if size == 0:
            continue
        out.append((start, start + size))
        start += size
    return out


def interleaved_ranges(
    total: int, group_size: int, worker: int, n_workers: int
) -> Iterator[tuple[int, int]]:
    """Yield the (start, stop) groups assigned to ``worker`` under round-robin
    distribution of fixed-size groups — the work-group to thread mapping of
    the paper's Fig 6."""
    if group_size <= 0 or n_workers <= 0:
        raise ValueError("group_size and n_workers must be positive")
    if not (0 <= worker < n_workers):
        raise ValueError("worker index out of range")
    group = worker
    while group * group_size < total:
        start = group * group_size
        yield (start, min(start + group_size, total))
        group += n_workers
