"""Physical constants and package-wide numeric conventions.

All quantities in the package are SI unless a name says otherwise:

* station/antenna positions and baseline vectors — metres,
* ``uvw`` coordinates — metres until scaled by ``freq / c`` into wavelengths,
* image coordinates ``(l, m)`` — direction cosines (dimensionless, radians in
  the small-angle limit),
* frequencies — Hz, time — seconds.

Complex visibilities are stored as ``complex64`` by default (the paper uses
single precision throughout; Section VI-A: "All computations are performed in
single precision").
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

#: Speed of light in vacuum [m/s]; used to convert uvw metres -> wavelengths.
SPEED_OF_LIGHT = 299_792_458.0

#: Default dtype for visibilities, subgrids and grids (paper: single precision).
COMPLEX_DTYPE = np.complex64

#: Accumulation dtype.  Kernels accumulate phasor sums in double precision and
#: convert to :data:`COMPLEX_DTYPE` only on return, so the paper's
#: single-precision storage never compounds rounding across visibilities.
ACCUM_DTYPE = np.complex128

#: Default dtype for real-valued auxiliary data (uvw, tapers, phases).
FLOAT_DTYPE = np.float32

#: Array aliases used in kernel signatures (kept loose on purpose: kernels
#: accept either storage or accumulation precision and convert on return).
ComplexArray = NDArray[np.complexfloating]
FloatArray = NDArray[np.floating]
IntArray = NDArray[np.integer]

#: Number of polarisation products per visibility (2x2 Jones correlations:
#: XX, XY, YX, YY).
NR_POLARIZATIONS = 4

#: Number of correlations along one polarisation axis.
NR_CORRELATIONS = 2


def wavenumbers(frequencies: np.ndarray) -> np.ndarray:
    """Return ``2*pi * f / c`` for each frequency — the factor that converts a
    uvw coordinate in metres into a phase per unit direction cosine.

    Parameters
    ----------
    frequencies:
        Array of channel frequencies in Hz.
    """
    frequencies = np.asarray(frequencies, dtype=np.float64)
    return 2.0 * np.pi * frequencies / SPEED_OF_LIGHT


def metres_to_wavelengths(uvw_m: np.ndarray, frequency: float | np.ndarray) -> np.ndarray:
    """Convert uvw coordinates from metres to wavelengths at ``frequency`` Hz.

    Supports broadcasting: ``uvw_m`` of shape ``(..., 3)`` against a scalar
    frequency, or ``(...,)`` coordinate arrays against an array of channel
    frequencies.
    """
    return np.asarray(uvw_m) * (np.asarray(frequency) / SPEED_OF_LIGHT)
