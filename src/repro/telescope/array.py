"""Station-array bookkeeping: stations, baselines and baseline vectors."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def baseline_pairs(n_stations: int) -> np.ndarray:
    """All unordered station pairs ``(p, q)`` with ``p < q``.

    Returns an ``(n_baselines, 2)`` int array in lexicographic order;
    ``n_baselines = n_stations * (n_stations - 1) / 2`` (150 stations →
    11 175 baselines, the paper's benchmark count).
    """
    if n_stations < 2:
        raise ValueError("need at least 2 stations to form a baseline")
    p, q = np.triu_indices(n_stations, k=1)
    return np.stack([p, q], axis=1).astype(np.int64)


@dataclass(frozen=True)
class StationArray:
    """A named set of station positions in a local ENU frame.

    Attributes
    ----------
    positions_enu:
        ``(n_stations, 3)`` east-north-up positions in metres.
    latitude_rad:
        Geodetic latitude of the array centre, needed to rotate ENU baselines
        into the equatorial frame for uvw synthesis.
    name:
        Human-readable identifier used in reports.
    """

    positions_enu: np.ndarray
    latitude_rad: float = -0.47  # ~ -26.8 deg, the SKA1-low site
    name: str = "array"

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions_enu, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError(f"positions_enu must be (n, 3), got {pos.shape}")
        if pos.shape[0] < 2:
            raise ValueError("need at least 2 stations")
        if not (-np.pi / 2 <= self.latitude_rad <= np.pi / 2):
            raise ValueError(f"latitude {self.latitude_rad} rad outside [-pi/2, pi/2]")
        object.__setattr__(self, "positions_enu", pos)

    @property
    def n_stations(self) -> int:
        return self.positions_enu.shape[0]

    @property
    def n_baselines(self) -> int:
        n = self.n_stations
        return n * (n - 1) // 2

    def baselines(self) -> np.ndarray:
        """``(n_baselines, 2)`` station index pairs, ``p < q``."""
        return baseline_pairs(self.n_stations)

    def baseline_vectors_enu(self) -> np.ndarray:
        """``(n_baselines, 3)`` ENU baseline vectors ``pos[q] - pos[p]`` [m]."""
        pairs = self.baselines()
        return self.positions_enu[pairs[:, 1]] - self.positions_enu[pairs[:, 0]]

    def max_baseline_m(self) -> float:
        """Longest baseline length in metres (sets the resolution/grid size)."""
        return float(np.linalg.norm(self.baseline_vectors_enu(), axis=1).max())
