"""Telescope substrate: station layouts, baselines and uvw synthesis.

The paper benchmarks IDG on a synthetic observation built from the *proposed
SKA1-low antenna coordinates* processed by ``uvwsim`` [27].  Neither artefact
is redistributable here, so this package generates statistically equivalent
layouts (dense Gaussian core + log-spiral arms for SKA1-low) and implements
the same geometric uvw transform ``uvwsim`` uses (Thompson, Moran & Swenson,
eq. 4.1): the earth's rotation sweeps every baseline along an elliptical
track in the (u, v) plane, producing the coverage of the paper's Fig 8.
"""

from repro.telescope.layouts import (
    lofar_like_layout,
    random_disc_layout,
    ska1_low_like_layout,
    vla_like_layout,
)
from repro.telescope.array import StationArray, baseline_pairs
from repro.telescope.uvw import enu_to_equatorial, synthesize_uvw, uvw_rotation_matrix
from repro.telescope.observation import Observation

__all__ = [
    "lofar_like_layout",
    "random_disc_layout",
    "ska1_low_like_layout",
    "vla_like_layout",
    "StationArray",
    "baseline_pairs",
    "enu_to_equatorial",
    "synthesize_uvw",
    "uvw_rotation_matrix",
    "Observation",
]
