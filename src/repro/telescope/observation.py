"""Observation configuration: who observed what, when, at which frequencies.

An :class:`Observation` bundles a station array, a phase centre, the time
sampling and one subband's channel frequencies, and lazily synthesises the
uvw tracks all gridders consume.  The paper's benchmark observation
(Section VI-A) is available — at configurable scale — via
:func:`ska1_low_observation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.constants import SPEED_OF_LIGHT
from repro.gridspec import GridSpec
from repro.telescope.array import StationArray
from repro.telescope.layouts import ska1_low_like_layout
from repro.telescope.uvw import enu_to_equatorial, hour_angle_range, synthesize_uvw


@dataclass(frozen=True)
class Observation:
    """One subband of a synthetic observation.

    Attributes
    ----------
    array:
        The station array.
    n_times:
        Number of integrations (the paper uses T = 8192).
    integration_time_s:
        Length of one integration (paper: 1 s).
    frequencies_hz:
        ``(n_channels,)`` channel frequencies of the subband (paper: C = 16).
    declination_rad:
        Declination of the phase centre.
    hour_angle_start_rad:
        Hour angle of the first integration.
    """

    array: StationArray
    n_times: int
    integration_time_s: float
    frequencies_hz: np.ndarray
    declination_rad: float = -0.8
    hour_angle_start_rad: float = -0.15

    def __post_init__(self) -> None:
        freqs = np.atleast_1d(np.asarray(self.frequencies_hz, dtype=np.float64))
        if freqs.size == 0 or np.any(freqs <= 0):
            raise ValueError("frequencies_hz must be positive and non-empty")
        if self.n_times <= 0:
            raise ValueError("n_times must be positive")
        if self.integration_time_s <= 0:
            raise ValueError("integration_time_s must be positive")
        object.__setattr__(self, "frequencies_hz", freqs)

    @property
    def n_channels(self) -> int:
        return int(self.frequencies_hz.size)

    @property
    def n_baselines(self) -> int:
        return self.array.n_baselines

    @property
    def n_visibilities(self) -> int:
        """Total visibility count (baselines x times x channels)."""
        return self.n_baselines * self.n_times * self.n_channels

    @cached_property
    def hour_angles_rad(self) -> np.ndarray:
        return hour_angle_range(
            self.n_times, self.integration_time_s, start_rad=self.hour_angle_start_rad
        )

    @cached_property
    def uvw_m(self) -> np.ndarray:
        """``(n_baselines, n_times, 3)`` uvw coordinates in metres."""
        bvec = enu_to_equatorial(self.array.baseline_vectors_enu(), self.array.latitude_rad)
        return synthesize_uvw(bvec, self.hour_angles_rad, self.declination_rad)

    def uvw_wavelengths(self, channel: int) -> np.ndarray:
        """uvw in wavelengths at one channel: ``uvw_m * f_c / c``."""
        return self.uvw_m * (self.frequencies_hz[channel] / SPEED_OF_LIGHT)

    def max_uv_wavelengths(self) -> float:
        """Largest |(u, v)| over baselines, times and channels."""
        uv = self.uvw_m[:, :, :2]
        radius_m = float(np.sqrt((uv**2).sum(axis=2)).max())
        return radius_m * (self.frequencies_hz.max() / SPEED_OF_LIGHT)

    def max_w_wavelengths(self) -> float:
        """Largest |w| over baselines, times and channels."""
        w_m = float(np.abs(self.uvw_m[:, :, 2]).max())
        return w_m * (self.frequencies_hz.max() / SPEED_OF_LIGHT)

    def fitting_gridspec(self, grid_size: int, fill_factor: float = 0.9) -> GridSpec:
        """A :class:`GridSpec` whose uv extent just contains this observation.

        ``fill_factor`` leaves headroom so subgrids near the longest baselines
        still fit.  The image size follows from the uv extent
        (``image_size = grid_size * fill_factor / (2 * max_uv)``); a coarser
        grid therefore means a *wider* field at the same pixel count.
        """
        max_uv = self.max_uv_wavelengths()
        if max_uv <= 0:
            raise ValueError("observation has zero uv extent")
        image_size = fill_factor * grid_size / (2.0 * max_uv)
        # image_size is in direction cosines and must stay physical (< 2).
        image_size = min(image_size, 1.0)
        return GridSpec(grid_size=grid_size, image_size=image_size)


def subband_frequencies(
    start_hz: float = 150e6, n_channels: int = 16, channel_width_hz: float = 200e3
) -> np.ndarray:
    """Channel frequencies of one subband (defaults: a LOFAR/SKA-low subband)."""
    if n_channels <= 0:
        raise ValueError("n_channels must be positive")
    return start_hz + channel_width_hz * np.arange(n_channels, dtype=np.float64)


def ska1_low_observation(
    n_stations: int = 150,
    n_times: int = 8192,
    n_channels: int = 16,
    integration_time_s: float = 1.0,
    start_frequency_hz: float = 150e6,
    channel_width_hz: float = 200e3,
    max_radius_m: float = 40_000.0,
    seed: int = 0,
) -> Observation:
    """The paper's Section VI-A benchmark observation (scalable).

    Defaults reproduce the published parameters: 150 stations (11 175
    baselines), 8 192 one-second integrations and 16 channels.  The full-size
    set holds ~1.5 * 10**9 visibilities — far beyond a laptop's memory — so
    benchmarks pass smaller ``n_stations``/``n_times`` and report
    per-visibility metrics, which converge long before the full size (see
    DESIGN.md, substitutions).
    """
    layout = ska1_low_like_layout(n_stations=n_stations, max_radius_m=max_radius_m, seed=seed)
    array = StationArray(positions_enu=layout, name=f"ska1-low-like-{n_stations}")
    freqs = subband_frequencies(start_frequency_hz, n_channels, channel_width_hz)
    return Observation(
        array=array,
        n_times=n_times,
        integration_time_s=integration_time_s,
        frequencies_hz=freqs,
    )
