"""Earth-rotation uvw synthesis (the ``uvwsim`` substitute).

Given baseline vectors in the equatorial frame and the (hour angle,
declination) of the phase centre, the classical interferometry rotation
(Thompson, Moran & Swenson eq. 4.1) yields the (u, v, w) coordinates in
metres; as the hour angle advances with the earth's rotation every baseline
sweeps an elliptical track — the structure visible in the paper's Fig 8.
"""

from __future__ import annotations

import numpy as np

#: Sidereal rate: radians of hour angle per second of time.
EARTH_ROTATION_RATE = 2.0 * np.pi / 86_164.0905


def enu_to_equatorial(enu: np.ndarray, latitude_rad: float) -> np.ndarray:
    """Rotate east-north-up vectors into the equatorial (X, Y, Z) frame.

    X points to (hour angle 0, declination 0), Y to hour angle -6h on the
    equator (i.e. east), Z to the north celestial pole.

    Parameters
    ----------
    enu:
        ``(..., 3)`` vectors in metres.
    latitude_rad:
        Geodetic latitude of the array.
    """
    enu = np.asarray(enu, dtype=np.float64)
    east, north, up = enu[..., 0], enu[..., 1], enu[..., 2]
    sin_lat, cos_lat = np.sin(latitude_rad), np.cos(latitude_rad)
    x = -sin_lat * north + cos_lat * up
    y = east
    z = cos_lat * north + sin_lat * up
    return np.stack([x, y, z], axis=-1)


def uvw_rotation_matrix(hour_angle_rad: float, declination_rad: float) -> np.ndarray:
    """3x3 matrix mapping equatorial (X, Y, Z) to (u, v, w).

    u grows toward the east on the sky, v toward north, w toward the phase
    centre.
    """
    sin_h, cos_h = np.sin(hour_angle_rad), np.cos(hour_angle_rad)
    sin_d, cos_d = np.sin(declination_rad), np.cos(declination_rad)
    return np.array(
        [
            [sin_h, cos_h, 0.0],
            [-sin_d * cos_h, sin_d * sin_h, cos_d],
            [cos_d * cos_h, -cos_d * sin_h, sin_d],
        ]
    )


def synthesize_uvw(
    baseline_vectors_equatorial: np.ndarray,
    hour_angles_rad: np.ndarray,
    declination_rad: float,
) -> np.ndarray:
    """uvw tracks for every baseline and hour angle.

    Parameters
    ----------
    baseline_vectors_equatorial:
        ``(n_baselines, 3)`` vectors in metres (see :func:`enu_to_equatorial`).
    hour_angles_rad:
        ``(n_times,)`` hour angles of the phase centre.
    declination_rad:
        Declination of the phase centre.

    Returns
    -------
    ``(n_baselines, n_times, 3)`` uvw coordinates in metres.
    """
    bvec = np.asarray(baseline_vectors_equatorial, dtype=np.float64)
    if bvec.ndim != 2 or bvec.shape[1] != 3:
        raise ValueError(f"baseline vectors must be (n, 3), got {bvec.shape}")
    hour_angles_rad = np.atleast_1d(np.asarray(hour_angles_rad, dtype=np.float64))

    # Stack the per-time rotation matrices: (n_times, 3, 3).
    sin_h, cos_h = np.sin(hour_angles_rad), np.cos(hour_angles_rad)
    sin_d, cos_d = np.sin(declination_rad), np.cos(declination_rad)
    zeros = np.zeros_like(sin_h)
    rot = np.empty((hour_angles_rad.size, 3, 3))
    rot[:, 0, 0], rot[:, 0, 1], rot[:, 0, 2] = sin_h, cos_h, zeros
    rot[:, 1, 0], rot[:, 1, 1], rot[:, 1, 2] = -sin_d * cos_h, sin_d * sin_h, cos_d
    rot[:, 2, 0], rot[:, 2, 1], rot[:, 2, 2] = cos_d * cos_h, -cos_d * sin_h, sin_d

    # (n_baselines, n_times, 3) = einsum over the shared xyz axis.
    return np.einsum("tij,bj->bti", rot, bvec)


def hour_angle_range(
    n_times: int, integration_time_s: float, start_rad: float = -0.0
) -> np.ndarray:
    """Hour angles of ``n_times`` consecutive integrations.

    The paper's benchmark uses 8 192 time steps at 1 s integration; the first
    sample sits at ``start_rad`` and subsequent samples advance at the
    sidereal rate.
    """
    if n_times <= 0:
        raise ValueError("n_times must be positive")
    t = np.arange(n_times, dtype=np.float64) * integration_time_s
    return start_rad + t * EARTH_ROTATION_RATE
