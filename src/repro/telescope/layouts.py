"""Synthetic station layouts.

Each generator returns station positions in a local east-north-up (ENU) frame
in metres, shape ``(n_stations, 3)`` (up component zero: the arrays are
treated as coplanar at generation time; w terms still arise from earth
rotation and source declination, exactly as for the real instruments).

The SKA1-low-like generator follows the published configuration concept: a
dense, quasi-Gaussian core holding roughly half the stations, surrounded by
three log-spiral arms reaching the maximum radius.  LOFAR- and VLA-like
layouts are provided for the accuracy experiments and examples.
"""

from __future__ import annotations

import numpy as np


def _as_enu(xy: np.ndarray) -> np.ndarray:
    """Stack a z=0 column onto ``(n, 2)`` planar coordinates."""
    out = np.zeros((xy.shape[0], 3), dtype=np.float64)
    out[:, :2] = xy
    return out


def ska1_low_like_layout(
    n_stations: int = 150,
    core_fraction: float = 0.5,
    core_radius_m: float = 500.0,
    max_radius_m: float = 40_000.0,
    n_arms: int = 3,
    seed: int = 0,
) -> np.ndarray:
    """SKA1-low-like layout: Gaussian core plus log-spiral arms.

    Parameters
    ----------
    n_stations:
        Total number of stations (the paper's set uses 150 → 11 175
        baselines).
    core_fraction:
        Fraction of stations placed in the dense core.
    core_radius_m:
        1-sigma radius of the Gaussian core.
    max_radius_m:
        Radius of the outermost arm station.  40 km gives the dense-centre /
        long-tail uv distribution of the paper's Fig 8.
    n_arms:
        Number of log-spiral arms sharing the remaining stations.
    seed:
        RNG seed; layouts are deterministic per seed.
    """
    if n_stations < 2:
        raise ValueError("need at least 2 stations")
    rng = np.random.default_rng(seed)
    n_core = max(1, int(round(n_stations * core_fraction)))
    n_out = n_stations - n_core

    core = rng.normal(scale=core_radius_m, size=(n_core, 2))

    arm_positions = []
    if n_out > 0:
        per_arm = [n_out // n_arms + (1 if a < n_out % n_arms else 0) for a in range(n_arms)]
        r0 = 3.0 * core_radius_m
        growth = np.log(max_radius_m / r0)
        for arm, count in enumerate(per_arm):
            if count == 0:
                continue
            t = np.linspace(0.0, 1.0, count, endpoint=True)
            radius = r0 * np.exp(growth * t)  # idglint: disable=IDG002  (setup: per-arm, not per-visibility)
            angle = 2.0 * np.pi * arm / n_arms + 1.5 * np.pi * t
            angle = angle + rng.normal(scale=0.03, size=count)
            radius = radius * (1.0 + rng.normal(scale=0.05, size=count))
            enu = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)  # idglint: disable=IDG002,IDG003  (setup: per-arm)
            arm_positions.append(enu)
    xy = np.concatenate([core] + arm_positions, axis=0) if arm_positions else core
    return _as_enu(xy)


def lofar_like_layout(
    n_stations: int = 48,
    core_radius_m: float = 1_500.0,
    max_radius_m: float = 80_000.0,
    seed: int = 0,
) -> np.ndarray:
    """LOFAR-like layout: superterp-style core + scattered remote stations.

    Two thirds of the stations form a compact core; the rest are scattered
    with log-uniform radii out to ``max_radius_m`` (LOFAR's Dutch remote
    stations reach ~80 km).
    """
    rng = np.random.default_rng(seed)
    n_core = max(2, (2 * n_stations) // 3)
    n_remote = n_stations - n_core
    core = rng.normal(scale=core_radius_m / 2.0, size=(n_core, 2))
    if n_remote > 0:
        radius = np.exp(
            rng.uniform(np.log(2.0 * core_radius_m), np.log(max_radius_m), size=n_remote)
        )
        angle = rng.uniform(0.0, 2.0 * np.pi, size=n_remote)
        remote = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)
        xy = np.concatenate([core, remote], axis=0)
    else:
        xy = core
    return _as_enu(xy)


def vla_like_layout(
    n_stations: int = 27,
    arm_length_m: float = 21_000.0,
    power: float = 1.716,
    seed: int = 0,
) -> np.ndarray:
    """VLA-like Y layout: three arms with power-law station spacing.

    The real VLA places antenna ``k`` of each 9-station arm at radius
    proportional to ``k**1.716``; arms are 120 degrees apart.
    """
    rng = np.random.default_rng(seed)
    per_arm = [n_stations // 3 + (1 if a < n_stations % 3 else 0) for a in range(3)]
    xy = []
    for arm, count in enumerate(per_arm):
        if count == 0:
            continue
        k = np.arange(1, count + 1, dtype=np.float64)
        radius = arm_length_m * (k / count) ** power
        angle = np.full(count, 2.0 * np.pi * arm / 3.0 + np.pi / 2.0)  # idglint: disable=IDG003  (setup: 3 arms)
        angle = angle + rng.normal(scale=1e-3, size=count)
        enu = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)  # idglint: disable=IDG002,IDG003  (setup: 3 arms)
        xy.append(enu)
    return _as_enu(np.concatenate(xy, axis=0))


def random_disc_layout(n_stations: int = 32, radius_m: float = 5_000.0, seed: int = 0) -> np.ndarray:
    """Uniform-in-area random layout on a disc (useful for property tests)."""
    rng = np.random.default_rng(seed)
    radius = radius_m * np.sqrt(rng.uniform(0.0, 1.0, size=n_stations))
    angle = rng.uniform(0.0, 2.0 * np.pi, size=n_stations)
    return _as_enu(np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1))
